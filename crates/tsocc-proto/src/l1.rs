//! TSO-CC private L1 cache controller.

use tsocc_coherence::{
    Agent, CacheController, Completion, CoreOp, Epoch, Grant, L1Controller, L1Stats, Msg, NetMsg,
    Outbox, SelfInvCause, Submit, Ts, TsSource, WritebackBuffer,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheArray, CacheParams, InsertOutcome, LineAddr, LineData, LineMap};
use tsocc_sim::Cycle;

use crate::config::TsoCcConfig;

/// L1 line states (Invalid is represented by absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Untracked shared copy; may hit `max_acc` times before a forced
    /// re-request; removed by self-invalidation sweeps.
    Shared,
    /// Shared read-only copy; hits without limit; invalidated by
    /// broadcast on remote writes; survives sweeps.
    SharedRO,
    Exclusive,
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: State,
    data: LineData,
    /// Hits consumed since the line was (re-)obtained (`b.acnt`).
    acnt: u64,
    /// Last-written timestamp (`b.ts`), valid only once written by this
    /// core.
    ts: Ts,
}

#[derive(Clone, Copy, Debug)]
enum MshrOp {
    Load { word: usize },
    Store { word: usize, value: u64 },
    Rmw { word: usize, op: RmwOp },
}

#[derive(Debug)]
struct Mshr {
    op: MshrOp,
    /// An invalidation raced past the data response (SharedRO broadcast
    /// invalidation or inclusive L2 eviction). The arriving shared data
    /// is usable for the access but must not be cached (§3.4 races).
    poisoned: bool,
}

/// Structural configuration of a TSO-CC L1 (the protocol parameters
/// live in [`TsoCcConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct TsoCcL1Config {
    /// This core's id.
    pub id: usize,
    /// Total number of cores (for reset broadcasts).
    pub n_cores: usize,
    /// Number of L2 tiles.
    pub n_tiles: usize,
    /// Cache geometry (32 KiB 4-way in Table 2).
    pub params: CacheParams,
    /// Tag-array latency charged before an outgoing request (cycles).
    pub issue_latency: u64,
    /// Protocol parameters.
    pub proto: TsoCcConfig,
}

impl TsoCcL1Config {
    /// The paper's Table 2 L1 with the given protocol parameters.
    pub fn table2(id: usize, n_cores: usize, n_tiles: usize, proto: TsoCcConfig) -> Self {
        TsoCcL1Config {
            id,
            n_cores,
            n_tiles,
            params: CacheParams::from_capacity(32 * 1024, 4),
            issue_latency: 1,
            proto,
        }
    }
}

/// The TSO-CC L1 controller for one core.
///
/// Owns the core-local timestamp source, the write-group counter, the
/// last-seen timestamp tables (`ts_L1`, `ts_L2`) and the epoch-id tables
/// of Table 1.
#[derive(Debug)]
pub struct TsoCcL1 {
    cfg: TsoCcL1Config,
    cache: CacheArray<Line>,
    mshrs: LineMap<Mshr>,
    wb: WritebackBuffer,
    outbox: Outbox,
    completions: Vec<Completion>,
    stats: L1Stats,
    /// Current write timestamp source.
    ts_src: Ts,
    /// Writes consumed in the current timestamp group.
    wg_count: u64,
    /// Current epoch of this core's timestamp source.
    epoch: Epoch,
    /// Last-seen write timestamp per remote core (`ts_L1`), indexed by
    /// core id; [`Ts::INVALID`] means "never seen" (every recorded
    /// timestamp is valid, so the sentinel is unambiguous).
    ts_l1: Vec<Ts>,
    /// Expected epoch per remote core's timestamp source, indexed by
    /// core id ([`Epoch::ZERO`] until a reset is observed).
    epochs_l1: Vec<Epoch>,
    /// Last-seen SharedRO timestamp per L2 tile (`ts_L2`), indexed by
    /// tile; [`Ts::INVALID`] means "never seen".
    ts_l2: Vec<Ts>,
    /// Expected epoch per L2 tile's timestamp source, indexed by tile.
    epochs_l2: Vec<Epoch>,
}

impl TsoCcL1 {
    /// Creates the controller.
    pub fn new(cfg: TsoCcL1Config) -> Self {
        TsoCcL1 {
            cfg,
            cache: CacheArray::new(cfg.params),
            mshrs: LineMap::new(),
            wb: WritebackBuffer::new(),
            outbox: Outbox::new(),
            completions: Vec::new(),
            stats: L1Stats::default(),
            ts_src: Ts::SMALLEST_VALID,
            wg_count: 0,
            epoch: Epoch::ZERO,
            ts_l1: vec![Ts::INVALID; cfg.n_cores],
            epochs_l1: vec![Epoch::ZERO; cfg.n_cores],
            ts_l2: vec![Ts::INVALID; cfg.n_tiles],
            epochs_l2: vec![Epoch::ZERO; cfg.n_tiles],
        }
    }

    fn agent(&self) -> Agent {
        Agent::L1(self.cfg.id)
    }

    fn home(&self, line: LineAddr) -> Agent {
        Agent::L2(line.home(self.cfg.n_tiles))
    }

    fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.cfg.issue_latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    fn line_free(&self, line: LineAddr) -> bool {
        !self.mshrs.contains_key(line) && self.wb.get(line).is_none()
    }

    // ---- timestamp management (§3.3 / §3.5) -----------------------------

    /// Consumes one write: returns the timestamp to stamp the line with
    /// and advances the group/source counters, broadcasting a reset on
    /// wrap-around.
    fn on_write(&mut self, now: Cycle) -> Ts {
        let Some(params) = self.cfg.proto.write_ts else {
            return Ts::INVALID;
        };
        let stamp = self.ts_src;
        self.wg_count += 1;
        if self.wg_count >= params.group_size() {
            self.wg_count = 0;
            if self.ts_src.as_u64() >= params.max_ts() {
                self.reset_ts(now);
            } else {
                self.ts_src = self.ts_src.next();
            }
        }
        stamp
    }

    /// Wraps the timestamp source: new epoch, broadcast, restart just
    /// above the smallest valid timestamp (§3.5).
    fn reset_ts(&mut self, now: Cycle) {
        self.epoch = self.epoch.next(self.cfg.proto.epoch_bits);
        self.ts_src = Ts::SMALLEST_VALID.next();
        self.stats.ts_resets.inc();
        let msg = Msg::TsReset {
            source: TsSource::L1(self.cfg.id),
            epoch: self.epoch,
        };
        for core in 0..self.cfg.n_cores {
            if core != self.cfg.id {
                self.send(now, Agent::L1(core), msg.clone());
            }
        }
        for tile in 0..self.cfg.n_tiles {
            self.send(now, Agent::L2(tile), msg.clone());
        }
    }

    /// Clamps a line timestamp against the current source ("compare
    /// against the current timestamp-source", §3.5): a timestamp from a
    /// previous epoch must not be sent out larger than the source.
    fn clamp_own_ts(&self, ts: Ts) -> Ts {
        if !ts.is_valid() {
            Ts::INVALID
        } else if ts <= self.ts_src {
            ts
        } else {
            Ts::SMALLEST_VALID
        }
    }

    // ---- self-invalidation (§3.2 / §3.3 / §3.4) --------------------------

    /// Invalidates all Shared lines (SharedRO, Exclusive and Modified
    /// lines survive).
    fn self_invalidate(&mut self, cause: SelfInvCause) {
        let removed = self.cache.retain(|_, l| l.state != State::Shared);
        self.stats.record_selfinv(cause, removed as u64);
    }

    /// Applies the potential-acquire detection rules to a data
    /// response; called for every L1 miss response before installing.
    fn acquire_check(
        &mut self,
        grant: Grant,
        writer: usize,
        ts: Ts,
        epoch: Epoch,
        ts_source: Option<TsSource>,
    ) {
        match grant {
            Grant::SharedRO => {
                let Some(TsSource::L2(tile)) = ts_source else {
                    // No SharedRO timestamps (CC-shared-to-L2): always a
                    // mandatory self-invalidation.
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    return;
                };
                // Epoch mismatch: handle as if the reset message arrived
                // (the response raced past a TsReset broadcast).
                if epoch != self.epochs_l2[tile] {
                    self.epochs_l2[tile] = epoch;
                    self.ts_l2[tile] = Ts::INVALID;
                }
                if !ts.is_valid() {
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    return;
                }
                let seen = self.ts_l2[tile];
                if !seen.is_valid() {
                    // Never read from this tile (or reset dropped the
                    // entry): mandatory self-invalidation.
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    self.ts_l2[tile] = ts;
                } else if ts > seen {
                    // SharedRO timestamps are grouped (§3.4), so the
                    // potential-acquire rule is "larger than".
                    self.self_invalidate(SelfInvCause::AcquireSro);
                    self.ts_l2[tile] = ts;
                }
            }
            Grant::Exclusive | Grant::Shared => {
                if writer == self.cfg.id {
                    // Reading our own last write implies no new
                    // happened-before edge: no self-invalidation (§3.2).
                    return;
                }
                let Some(params) = self.cfg.proto.write_ts else {
                    // Basic protocol: every remote data response
                    // self-invalidates; the timestamp is (vacuously)
                    // invalid.
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    return;
                };
                if writer == usize::MAX || !ts.is_valid() {
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    return;
                }
                if let Some(TsSource::L1(w)) = ts_source {
                    debug_assert_eq!(w, writer);
                    if epoch != self.epochs_l1[w] {
                        self.epochs_l1[w] = epoch;
                        self.ts_l1[w] = Ts::INVALID;
                    }
                }
                let seen = self.ts_l1[writer];
                if !seen.is_valid() {
                    // Never read from this writer before (§3.3).
                    self.self_invalidate(SelfInvCause::InvalidTs);
                    self.ts_l1[writer] = ts;
                } else {
                    // Write groups share timestamps, so with groups
                    // the rule is >=; with group size 1 it is > (§3.3).
                    let acquire = if params.group_size() > 1 {
                        ts >= seen
                    } else {
                        ts > seen
                    };
                    if acquire {
                        self.self_invalidate(SelfInvCause::AcquireNonSro);
                    }
                    if ts > seen {
                        self.ts_l1[writer] = ts;
                    }
                }
            }
        }
    }

    // ---- eviction / install ----------------------------------------------

    fn evict(&mut self, now: Cycle, victim: LineAddr, line: Line) {
        match line.state {
            // Shared and SharedRO lines are untracked: silent (§3.2,
            // §3.4 — the coarse group vector stays conservatively set).
            State::Shared | State::SharedRO => {}
            State::Exclusive => {
                self.wb
                    .insert(victim, line.data, false, Ts::INVALID, Epoch::ZERO);
                self.send(now, self.home(victim), Msg::PutE { line: victim });
            }
            State::Modified => {
                let ts = self.clamp_own_ts(line.ts);
                self.wb.insert(victim, line.data, true, ts, self.epoch);
                self.send(
                    now,
                    self.home(victim),
                    Msg::PutM {
                        line: victim,
                        data: line.data,
                        ts,
                        epoch: self.epoch,
                    },
                );
            }
        }
    }

    fn install(&mut self, now: Cycle, line: LineAddr, entry: Line) -> bool {
        if let Some(resident) = self.cache.peek_mut(line) {
            *resident = entry;
            return true;
        }
        let mshrs = &self.mshrs;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !mshrs.contains_key(la));
        match outcome {
            InsertOutcome::Installed => true,
            InsertOutcome::Evicted(victim, old) => {
                self.evict(now, victim, old);
                true
            }
            InsertOutcome::SetFull => false,
        }
    }

    /// Handles an arriving data response for an outstanding miss.
    fn complete_miss(
        &mut self,
        now: Cycle,
        line: LineAddr,
        data: LineData,
        grant: Grant,
        ack_required: bool,
    ) {
        let mshr = self
            .mshrs
            .remove(line)
            .unwrap_or_else(|| panic!("L1[{}]: data for no MSHR {line}", self.cfg.id));
        let poisoned = mshr.poisoned;
        let mut data = data;
        let (entry, completion) = match mshr.op {
            MshrOp::Load { word } => {
                let value = data.read_word(word);
                let state = match grant {
                    Grant::Exclusive => State::Exclusive,
                    Grant::Shared => State::Shared,
                    Grant::SharedRO => State::SharedRO,
                };
                let entry = Line {
                    state,
                    data,
                    acnt: 0,
                    ts: Ts::INVALID,
                };
                (Some(entry), Completion::Load(value))
            }
            MshrOp::Store { word, value } => {
                assert_eq!(grant, Grant::Exclusive, "stores need exclusive grants");
                data.write_word(word, value);
                let ts = self.on_write(now);
                let entry = Line {
                    state: State::Modified,
                    data,
                    acnt: 0,
                    ts,
                };
                (Some(entry), Completion::Store)
            }
            MshrOp::Rmw { word, op } => {
                assert_eq!(grant, Grant::Exclusive, "RMWs need exclusive grants");
                let old = data.read_word(word);
                data.write_word(word, op.apply(old));
                let ts = self.on_write(now);
                let entry = Line {
                    state: State::Modified,
                    data,
                    acnt: 0,
                    ts,
                };
                (Some(entry), Completion::Load(old))
            }
        };
        if let Some(entry) = entry {
            // CC-shared-to-L2 never caches Shared data; poisoned shared
            // grants (a racing invalidation) must not be cached either.
            let cacheable = !((entry.state == State::Shared && self.cfg.proto.max_acc == 0)
                || (poisoned && matches!(entry.state, State::Shared | State::SharedRO)));
            if cacheable {
                let installed = self.install(now, line, entry);
                if !installed {
                    // No evictable way: hand the line straight back.
                    match entry.state {
                        State::Shared | State::SharedRO => {}
                        State::Exclusive => {
                            self.wb
                                .insert(line, entry.data, false, Ts::INVALID, Epoch::ZERO);
                            self.send(now, self.home(line), Msg::PutE { line });
                        }
                        State::Modified => {
                            let ts = self.clamp_own_ts(entry.ts);
                            self.wb.insert(line, entry.data, true, ts, self.epoch);
                            self.send(
                                now,
                                self.home(line),
                                Msg::PutM {
                                    line,
                                    data: entry.data,
                                    ts,
                                    epoch: self.epoch,
                                },
                            );
                        }
                    }
                }
            } else if self.cache.peek(line).is_some() {
                // An expired or invalidation-raced resident copy must
                // not linger with stale data.
                self.cache.remove(line);
            }
        }
        if ack_required {
            self.send(
                now,
                self.home(line),
                Msg::Unblock {
                    line,
                    from: self.cfg.id,
                },
            );
        }
        self.completions.push(completion);
    }
}

impl CacheController for TsoCcL1 {
    fn handle_message(&mut self, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::Data {
                line,
                data,
                grant,
                writer,
                ts,
                epoch,
                ts_source,
                ack_required,
                ..
            } => {
                // Potential-acquire detection happens on every L1 miss
                // data response, before the new line is installed so the
                // sweep cannot remove it (§3.2).
                self.acquire_check(grant, writer, ts, epoch, ts_source);
                self.complete_miss(now, line, data, grant, ack_required);
            }
            Msg::FwdGetS { line, requester } => {
                // The owner downgrades to Shared, supplies the requester
                // and refreshes the L2 copy (§3.2).
                let (data, dirty, ts) = if let Some(l) = self.cache.peek_mut(line) {
                    let dirty = l.state == State::Modified;
                    let ts = l.ts;
                    l.state = State::Shared;
                    l.acnt = 0;
                    (l.data, dirty, ts)
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty, entry.ts)
                } else {
                    panic!("L1[{}]: FwdGetS for absent line {line}", self.cfg.id);
                };
                let (resp_ts, writer) = if dirty {
                    (self.clamp_own_ts(ts), self.cfg.id)
                } else {
                    // A clean Exclusive copy was never written by us; we
                    // cannot vouch for a timestamp (the L2 will move the
                    // line to SharedRO).
                    (Ts::INVALID, usize::MAX)
                };
                self.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Shared,
                        writer,
                        ts: resp_ts,
                        epoch: self.epoch,
                        ts_source: Some(TsSource::L1(self.cfg.id)),
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: false,
                    },
                );
                self.send(
                    now,
                    self.home(line),
                    Msg::DowngradeData {
                        line,
                        data,
                        dirty,
                        ts: resp_ts,
                        epoch: self.epoch,
                        from: self.cfg.id,
                    },
                );
            }
            Msg::FwdGetX { line, requester } => {
                let (data, ts, writer) = if let Some(l) = self.cache.remove(line) {
                    if l.state == State::Modified {
                        (l.data, self.clamp_own_ts(l.ts), self.cfg.id)
                    } else {
                        (l.data, Ts::INVALID, usize::MAX)
                    }
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    if entry.dirty {
                        (entry.data, entry.ts, self.cfg.id)
                    } else {
                        (entry.data, Ts::INVALID, usize::MAX)
                    }
                } else {
                    panic!("L1[{}]: FwdGetX for absent line {line}", self.cfg.id);
                };
                self.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Exclusive,
                        writer,
                        ts,
                        epoch: self.epoch,
                        ts_source: Some(TsSource::L1(self.cfg.id)),
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: true,
                    },
                );
            }
            Msg::Inv {
                line,
                ack_to_requester,
            } => {
                // SharedRO broadcast invalidation or inclusive L2
                // eviction; shared copies are removed blindly.
                if let Some(l) = self.cache.peek(line) {
                    debug_assert!(
                        matches!(l.state, State::Shared | State::SharedRO),
                        "Inv must not target private lines"
                    );
                    self.cache.remove(line);
                }
                if let Some(m) = self.mshrs.get_mut(line) {
                    if matches!(m.op, MshrOp::Load { .. }) {
                        m.poisoned = true;
                    }
                }
                debug_assert!(ack_to_requester.is_none(), "TSO-CC collects acks at the L2");
                self.send(
                    now,
                    self.home(line),
                    Msg::InvAckToL2 {
                        line,
                        from: self.cfg.id,
                    },
                );
            }
            Msg::Recall { line } => {
                let (data, dirty, ts) = if let Some(l) = self.cache.remove(line) {
                    (l.data, l.state == State::Modified, self.clamp_own_ts(l.ts))
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty, entry.ts)
                } else {
                    panic!("L1[{}]: Recall for absent line {line}", self.cfg.id);
                };
                self.send(
                    now,
                    self.home(line),
                    Msg::RecallData {
                        line,
                        data,
                        dirty,
                        ts,
                        epoch: self.epoch,
                        from: self.cfg.id,
                    },
                );
            }
            Msg::PutAck { line } => {
                self.wb.remove(line);
            }
            Msg::TsReset { source, epoch } => match source {
                TsSource::L1(core) => {
                    self.ts_l1[core] = Ts::INVALID;
                    self.epochs_l1[core] = epoch;
                }
                TsSource::L2(tile) => {
                    self.ts_l2[tile] = Ts::INVALID;
                    self.epochs_l2[tile] = epoch;
                }
            },
            other => panic!("L1[{}]: unexpected {other:?}", self.cfg.id),
        }
    }

    fn tick(&mut self, _now: Cycle) {}

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty() && self.wb.is_empty() && self.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // MSHR retries and writeback completion are message-driven;
        // self-invalidation happens synchronously inside submits and
        // data responses. Only the outbox needs a timed wake.
        self.outbox.next_ready()
    }
}

impl L1Controller for TsoCcL1 {
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit {
        match op {
            CoreOp::Fence => {
                // Fences self-invalidate all Shared lines (§3.6).
                self.self_invalidate(SelfInvCause::Fence);
                Submit::Hit(0)
            }
            CoreOp::Load(addr) => self.submit_load(now, addr),
            CoreOp::Store(addr, value) => self.submit_store(now, addr, value),
            CoreOp::Rmw(addr, rmw) => self.submit_rmw(now, addr, rmw),
        }
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}

impl TsoCcL1 {
    fn submit_load(&mut self, now: Cycle, addr: Addr) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let max_acc = self.cfg.proto.max_acc;
        let mut expired_shared = false;
        if let Some(l) = self.cache.lookup_mut(line) {
            match l.state {
                State::Exclusive | State::Modified => {
                    self.stats.read_hit_private.inc();
                    return Submit::Hit(l.data.read_word(word));
                }
                State::SharedRO => {
                    self.stats.read_hit_sharedro.inc();
                    return Submit::Hit(l.data.read_word(word));
                }
                State::Shared => {
                    if l.acnt < max_acc {
                        // Bounded staleness: a Shared line may serve up
                        // to 2^Bmaxacc hits before a forced re-request
                        // guarantees write propagation (§3.1).
                        l.acnt += 1;
                        self.stats.read_hit_shared.inc();
                        return Submit::Hit(l.data.read_word(word));
                    }
                    expired_shared = true;
                }
            }
        }
        if !self.line_free(line) {
            return Submit::Retry;
        }
        if expired_shared {
            self.stats.read_miss_shared.inc();
        } else {
            self.stats.read_miss_invalid.inc();
        }
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Load { word },
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetS { line });
        Submit::Miss
    }

    fn submit_store(&mut self, now: Cycle, addr: Addr, value: u64) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let private = matches!(
            self.cache.peek(line).map(|l| l.state),
            Some(State::Exclusive | State::Modified)
        );
        if private {
            // Exclusive→Modified transitions are silent (§3.2).
            let ts = self.on_write(now);
            let l = self.cache.lookup_mut(line).expect("checked resident");
            l.state = State::Modified;
            l.data.write_word(word, value);
            l.ts = ts;
            self.stats.write_hit_private.inc();
            return Submit::Hit(0);
        }
        if !self.line_free(line) {
            return Submit::Retry;
        }
        match self.cache.peek(line).map(|l| l.state) {
            Some(State::Shared) => self.stats.write_miss_shared.inc(),
            Some(State::SharedRO) => self.stats.write_miss_sharedro.inc(),
            _ => self.stats.write_miss_invalid.inc(),
        }
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Store { word, value },
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetX { line });
        Submit::Miss
    }

    fn submit_rmw(&mut self, now: Cycle, addr: Addr, rmw: RmwOp) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let private = matches!(
            self.cache.peek(line).map(|l| l.state),
            Some(State::Exclusive | State::Modified)
        );
        if private {
            let ts = self.on_write(now);
            let l = self.cache.lookup_mut(line).expect("checked resident");
            l.state = State::Modified;
            let old = l.data.read_word(word);
            l.data.write_word(word, rmw.apply(old));
            l.ts = ts;
            self.stats.rmw_hit.inc();
            self.stats.write_hit_private.inc();
            return Submit::Hit(old);
        }
        if !self.line_free(line) {
            return Submit::Retry;
        }
        self.stats.rmw_miss.inc();
        match self.cache.peek(line).map(|l| l.state) {
            Some(State::Shared) => self.stats.write_miss_shared.inc(),
            Some(State::SharedRO) => self.stats.write_miss_sharedro.inc(),
            _ => self.stats.write_miss_invalid.inc(),
        }
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Rmw { word, op: rmw },
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetX { line });
        Submit::Miss
    }
}
