//! Controller-level protocol tests for TSO-CC: L1s, one L2 tile and a
//! memory controller wired with a zero-latency message pump, so the
//! §3.2–§3.5 mechanisms can be observed transaction by transaction.

use tsocc_coherence::{
    Agent, CacheController, Completion, CoreOp, L1Controller, L2Controller, MemCtrl, NetMsg,
    SelfInvCause, Submit,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheParams, MainMemory};
use tsocc_sim::Cycle;

use crate::{TsParams, TsoCcConfig, TsoCcL1, TsoCcL1Config, TsoCcL2, TsoCcL2Config};

struct Harness {
    l1s: Vec<TsoCcL1>,
    l2: TsoCcL2,
    mem: MemCtrl,
    now: Cycle,
}

impl Harness {
    fn new(n_cores: usize, proto: TsoCcConfig) -> Self {
        let l1s = (0..n_cores)
            .map(|i| {
                TsoCcL1Config {
                    id: i,
                    n_cores,
                    n_tiles: 1,
                    l2_banks: 1,
                    params: CacheParams::new(4, 2),
                    issue_latency: 1,
                    proto,
                }
                .build()
            })
            .collect();
        let l2 = TsoCcL2Config {
            tile: 0,
            n_cores,
            n_mem: 1,
            params: CacheParams::new(8, 4),
            latency: 2,
            proto,
        }
        .build();
        Harness {
            l1s,
            l2,
            mem: MemCtrl::new(0, MainMemory::new(), 5),
            now: Cycle::ZERO,
        }
    }

    fn route(&mut self, nm: NetMsg) {
        let now = self.now;
        match nm.dst {
            Agent::L1(i) => self.l1s[i].handle_message(now, nm.src, nm.msg),
            Agent::L2(0) => self.l2.handle_message(now, nm.src, nm.msg),
            Agent::Mem(0) => self.mem.handle_message(now, nm.src, nm.msg),
            other => panic!("unexpected destination {other}"),
        }
    }

    fn pump(&mut self, cycles: u64) {
        for _ in 0..cycles {
            let now = self.now;
            let mut msgs: Vec<NetMsg> = Vec::new();
            for l1 in &mut self.l1s {
                l1.tick(now);
                l1.drain_outbox(now, &mut msgs);
            }
            self.l2.tick(now);
            self.l2.drain_outbox(now, &mut msgs);
            self.mem.drain_outbox(now, &mut msgs);
            for nm in msgs {
                self.route(nm);
            }
            self.now += 1;
        }
    }

    /// Drains core `core`'s ready completions into a fresh vector.
    fn take_completions(&mut self, core: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        self.l1s[core].drain_completions(&mut out);
        out
    }

    fn run_op(&mut self, core: usize, op: CoreOp) -> u64 {
        for _ in 0..100 {
            match self.l1s[core].submit(self.now, op) {
                Submit::Hit(v) => return v,
                Submit::Miss => {
                    for _ in 0..800 {
                        self.pump(1);
                        if let Some(c) = self.take_completions(core).first() {
                            return match c {
                                Completion::Load(v) => *v,
                                Completion::Store => 0,
                            };
                        }
                    }
                    panic!("op {op:?} on core {core} never completed");
                }
                // A transaction (e.g. an in-flight writeback of the same
                // line) blocks the op; drain and retry like the core
                // model does.
                Submit::Retry => self.pump(5),
            }
        }
        panic!("op {op:?} on core {core} retried forever");
    }

    fn load(&mut self, core: usize, addr: u64) -> u64 {
        self.run_op(core, CoreOp::Load(Addr::new(addr)))
    }

    fn store(&mut self, core: usize, addr: u64, value: u64) {
        self.run_op(core, CoreOp::Store(Addr::new(addr), value));
    }

    fn stats(&self, core: usize) -> &tsocc_coherence::L1Stats {
        L1Controller::stats(&self.l1s[core])
    }
}

fn best() -> TsoCcConfig {
    TsoCcConfig::realistic(12, 3)
}

#[test]
fn shared_hits_are_bounded_by_the_access_counter() {
    let mut h = Harness::new(2, best());
    h.store(0, 0x40, 7);
    assert_eq!(h.load(1, 0x40), 7, "downgrade-forwarded data");
    // Core 1 now holds a Shared copy: exactly 16 hits, then a forced
    // re-request (§3.2).
    for _ in 0..16 {
        assert!(matches!(
            h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
            Submit::Hit(7)
        ));
    }
    assert!(
        matches!(
            h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
            Submit::Miss
        ),
        "the 17th access must re-request from the L2"
    );
    // Finish the transaction and confirm the counter reset.
    for _ in 0..800 {
        h.pump(1);
        if !h.take_completions(1).is_empty() {
            break;
        }
    }
    assert_eq!(h.stats(1).read_miss_shared.get(), 1);
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Hit(7)
    ));
}

#[test]
fn writes_to_shared_lines_get_immediate_grants() {
    let mut h = Harness::new(3, best());
    h.store(0, 0x40, 1);
    h.load(1, 0x40); // line Shared at L2
                     // Core 2 writes: no invalidations are sent — the L2 responds
                     // immediately (§3.2) and core 1's stale copy ages out.
    h.store(2, 0x40, 2);
    assert_eq!(h.stats(2).write_miss_invalid.get(), 1);
    // Core 1 still hits its stale Shared copy (bounded staleness!).
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Hit(1)
    ));
    // After expiry it must see the new value.
    for _ in 0..16 {
        let _ = h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40)));
    }
    assert_eq!(h.load(1, 0x40), 2);
}

#[test]
fn acquire_detection_sweeps_shared_lines() {
    let mut h = Harness::new(2, best());
    // Core 0 publishes A, core 1 caches it Shared.
    h.store(0, 0x400, 10);
    h.load(1, 0x400);
    // Core 0 writes B (a release); core 1's read of B is a potential
    // acquire: its Shared copy of A must be swept (§3.2/§3.3).
    h.store(0, 0x440, 20);
    assert_eq!(h.load(1, 0x440), 20);
    assert!(
        h.stats(1).selfinv_total() >= 1,
        "acquire must trigger a self-invalidation event"
    );
    assert!(
        matches!(
            h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x400))),
            Submit::Miss
        ),
        "the Shared copy of A must be gone after the acquire"
    );
}

#[test]
fn reading_own_writes_does_not_sweep() {
    let mut h = Harness::new(2, best());
    h.store(0, 0x40, 1);
    // Evict core 0's line by conflicting stores (L1: 4 sets x 2 ways).
    h.store(0, 0x140, 2);
    h.store(0, 0x240, 3);
    let before = h.stats(0).selfinv_total();
    // Re-reading our own evicted write: last writer == requester, so no
    // self-invalidation (§3.2).
    assert_eq!(h.load(0, 0x40), 1);
    assert_eq!(
        h.stats(0).selfinv_total(),
        before,
        "no sweep for own writes"
    );
}

#[test]
fn clean_downgrades_produce_sharedro_lines() {
    let mut h = Harness::new(3, best());
    h.mem.memory_mut().write_word(Addr::new(0x40), 42);
    // Core 0 reads (Exclusive grant), never writes.
    assert_eq!(h.load(0, 0x40), 42);
    // Core 1 reads: the owner's copy is clean, so the line becomes
    // SharedRO at the L2 (§3.4).
    assert_eq!(h.load(1, 0x40), 42);
    // Core 2's read now gets a SharedRO grant with unlimited hits.
    assert_eq!(h.load(2, 0x40), 42);
    for _ in 0..100 {
        assert!(matches!(
            h.l1s[2].submit(h.now, CoreOp::Load(Addr::new(0x40))),
            Submit::Hit(42)
        ));
    }
    assert_eq!(h.stats(2).read_hit_sharedro.get(), 100);
    assert_eq!(h.stats(2).read_miss_shared.get(), 0);
}

#[test]
fn writes_to_sharedro_broadcast_invalidate() {
    let mut h = Harness::new(3, best());
    h.mem.memory_mut().write_word(Addr::new(0x40), 5);
    h.load(0, 0x40);
    h.load(1, 0x40); // SharedRO at L2
    h.load(2, 0x40); // SharedRO copy at core 2
                     // Core 0 writes: the coarse group vector is broadcast-invalidated
                     // and the writer gets an Exclusive grant (§3.4).
    h.store(0, 0x40, 6);
    assert!(h.stats(0).write_miss_sharedro.get() <= 1); // by state at core 0
    assert_eq!(L2Controller::stats(&h.l2).sro_invalidations.get(), 1);
    // All SharedRO copies are gone; readers see the new value.
    assert!(matches!(
        h.l1s[2].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Miss
    ));
    for _ in 0..800 {
        h.pump(1);
        if let Some(Completion::Load(v)) = h.take_completions(2).first() {
            assert_eq!(*v, 6);
            return;
        }
    }
    panic!("reload never completed");
}

#[test]
fn fence_sweeps_only_shared_lines() {
    let mut h = Harness::new(2, best());
    h.mem.memory_mut().write_word(Addr::new(0x400), 1);
    // A Shared line at core 1 (via modified downgrade)...
    h.store(0, 0x400, 2);
    h.load(1, 0x400);
    // ...and a private line at core 1.
    h.store(1, 0x440, 3);
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Fence),
        Submit::Hit(0)
    ));
    assert_eq!(
        h.stats(1).selfinv_events[SelfInvCause::Fence.index()].get(),
        1
    );
    // The private line survives; the Shared line is gone.
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x440))),
        Submit::Hit(3)
    ));
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x400))),
        Submit::Miss
    ));
}

#[test]
fn cc_shared_to_l2_never_caches_shared_data() {
    let mut h = Harness::new(2, TsoCcConfig::cc_shared_to_l2());
    h.store(0, 0x40, 9);
    assert_eq!(h.load(1, 0x40), 9);
    // Every further read is a miss: Shared lines are not cached.
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Miss
    ));
}

#[test]
fn basic_config_sweeps_on_every_remote_response() {
    let mut h = Harness::new(2, TsoCcConfig::basic());
    h.store(0, 0x400, 1);
    h.store(0, 0x440, 2);
    h.load(1, 0x400);
    let sweeps = h.stats(1).selfinv_total();
    h.load(1, 0x440);
    assert!(
        h.stats(1).selfinv_total() > sweeps,
        "basic: every remote data response self-invalidates"
    );
    assert!(
        h.stats(1).selfinv_events[SelfInvCause::InvalidTs.index()].get() > 0,
        "basic has no timestamps, so sweeps are invalid-ts"
    );
}

#[test]
fn transitive_reduction_skips_older_writes() {
    let mut h = Harness::new(2, TsoCcConfig::realistic(12, 0));
    // Core 0 writes A then B (B has the newer timestamp).
    h.store(0, 0x400, 1);
    h.store(0, 0x440, 2);
    // Core 1 reads B first: acquire (sweep) and last-seen ts = ts(B).
    h.load(1, 0x440);
    let sweeps = h.stats(1).selfinv_total();
    // Reading A now carries an older timestamp: no sweep (§3.3 — this
    // is the Figure 1 example where b2 does not re-invalidate).
    h.load(1, 0x400);
    assert_eq!(
        h.stats(1).selfinv_total(),
        sweeps,
        "older-timestamp response must not be treated as an acquire"
    );
}

#[test]
fn rmw_applies_acquire_rules() {
    let mut h = Harness::new(2, best());
    h.store(0, 0x400, 1); // shared data
    h.load(1, 0x400);
    h.store(0, 0x440, 0); // a lock word, last written by core 0
    let old = h.run_op(1, CoreOp::Rmw(Addr::new(0x440), RmwOp::Swap { operand: 1 }));
    assert_eq!(old, 0);
    assert!(
        h.stats(1).selfinv_total() >= 1,
        "an RMW miss response from another writer is a potential acquire"
    );
}

#[test]
fn timestamp_reset_broadcasts_reach_peers() {
    // 4-bit timestamps, group size 1: resets every 14 writes.
    let cfg = TsoCcConfig {
        write_ts: Some(TsParams {
            ts_bits: 4,
            write_group_bits: 0,
        }),
        ..best()
    };
    let mut h = Harness::new(2, cfg);
    for i in 0..40u64 {
        h.store(0, 0x40, i);
    }
    h.pump(100);
    assert!(
        h.stats(0).ts_resets.get() >= 2,
        "expected resets, saw {}",
        h.stats(0).ts_resets.get()
    );
    // Message passing still works across the resets.
    h.store(0, 0x80, 123);
    assert_eq!(h.load(1, 0x80), 123);
}

#[test]
fn decay_moves_stale_shared_lines_to_sharedro() {
    let mut h = Harness::new(2, TsoCcConfig::realistic(12, 0));
    // Make line A Shared with a (then-current) timestamp.
    h.store(0, 0x40, 1);
    h.load(1, 0x40);
    // Core 0 writes elsewhere to advance its timestamp far past A's;
    // evictions (tiny L1) push those timestamps to the L2's last-seen
    // table.
    for i in 0..300u64 {
        h.store(0, 0x1000 + (i % 8) * 0x200, i);
    }
    h.pump(300);
    // A re-read of A finds ts_L1[0] - A.ts > decay threshold: the line
    // decays to SharedRO (§3.4).
    for _ in 0..20 {
        let _ = h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40)));
        h.pump(5);
    }
    h.load(1, 0x40);
    assert!(
        L2Controller::stats(&h.l2).decays.get() > 0,
        "expected a Shared->SharedRO decay"
    );
}

#[test]
fn quiescence_after_mixed_traffic() {
    let mut h = Harness::new(3, best());
    h.store(0, 0x40, 1);
    h.load(1, 0x40);
    h.store(2, 0x40, 2);
    h.load(0, 0x40);
    h.pump(500);
    assert!(h.l1s.iter().all(|l| l.is_quiescent()));
    assert!(CacheController::is_quiescent(&h.l2));
}
