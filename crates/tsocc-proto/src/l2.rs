//! TSO-CC NUCA L2 tile: the sharing-vector-free directory.

use std::collections::VecDeque;

use tsocc_coherence::{
    Agent, CacheController, Epoch, Grant, L2Controller, L2Stats, Msg, NetMsg, Outbox, Ts, TsSource,
};
use tsocc_mem::{CacheArray, CacheParams, InsertOutcome, LineAddr, LineData, LineMap};
use tsocc_sim::Cycle;

use crate::config::TsoCcConfig;

/// Directory state of a resident line (absence = not present; §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Valid in the L2, no L1 copies.
    Uncached,
    /// Private: `owner` holds the line Exclusive/Modified.
    Exclusive,
    /// Shared, untracked; `owner` records the *last writer*.
    Shared,
    /// Shared read-only; `groups` is the coarse sharer group vector.
    SharedRO,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: State,
    data: LineData,
    /// Whether the L2 copy differs from memory.
    dirty: bool,
    /// `b.owner`: owner (Exclusive), last writer (Shared/Uncached);
    /// `usize::MAX` when unknown (fresh from memory).
    owner: usize,
    /// Coarse sharer group vector (SharedRO only) — the `b.owner` bits
    /// reused, one bit per group of cores (§3.4).
    groups: u32,
    /// `b.ts`: last-written timestamp (Shared/Uncached/Exclusive) or the
    /// tile's SharedRO timestamp (SharedRO).
    ts: Ts,
    /// Epoch of the source `ts` was drawn from.
    ts_epoch: Epoch,
}

#[derive(Debug)]
enum BusyKind {
    /// Waiting for memory data, then granting Exclusive to `requester`.
    Fetch { requester: usize },
    /// Waiting for the requester's Unblock after an Exclusive grant.
    Grant,
    /// Waiting for the old owner's DowngradeData after forwarding GetS.
    FwdS { requester: usize },
    /// Waiting for the requester's Unblock after forwarding GetX.
    FwdX,
    /// SharedRO write: collecting invalidation acks before granting
    /// Exclusive to `requester` (§3.4).
    SroInv { requester: usize, acks_left: u32 },
    /// L2 eviction of a SharedRO (acks) or Exclusive (recall) line.
    Dying {
        acks_left: u32,
        data: LineData,
        dirty: bool,
    },
}

#[derive(Debug)]
struct Busy {
    kind: BusyKind,
    need_unblock: bool,
    need_owner_data: bool,
    waiting: VecDeque<(Agent, Msg)>,
}

/// Structural configuration of a TSO-CC L2 tile.
#[derive(Clone, Copy, Debug)]
pub struct TsoCcL2Config {
    /// This tile's index.
    pub tile: usize,
    /// Number of cores.
    pub n_cores: usize,
    /// Number of memory controllers.
    pub n_mem: usize,
    /// Tile geometry (1 MiB 16-way in Table 2).
    pub params: CacheParams,
    /// Array access latency charged before responses (cycles).
    pub latency: u64,
    /// Protocol parameters.
    pub proto: TsoCcConfig,
}

impl TsoCcL2Config {
    /// The paper's Table 2 tile with the given protocol parameters.
    pub fn table2(tile: usize, n_cores: usize, n_mem: usize, proto: TsoCcConfig) -> Self {
        TsoCcL2Config {
            tile,
            n_cores,
            n_mem,
            params: CacheParams::from_capacity(1024 * 1024, 16),
            latency: 20,
            proto,
        }
    }

    /// Number of coarse sharer groups: `b.owner` has `log2(n)` bits to
    /// reuse (§3.4), so there are `log2(n_cores)` groups.
    pub fn n_groups(&self) -> usize {
        usize::BITS as usize - (self.n_cores.max(2) - 1).leading_zeros() as usize
    }

    /// The coarse group a core belongs to.
    pub fn group_of(&self, core: usize) -> usize {
        core % self.n_groups()
    }
}

/// One TSO-CC L2 tile.
///
/// Owns the tile's SharedRO timestamp source, the increment flags of
/// §3.4, and the per-core last-seen timestamp table of §3.5.
#[derive(Debug)]
pub struct TsoCcL2 {
    cfg: TsoCcL2Config,
    cache: CacheArray<Line>,
    busy: LineMap<Busy>,
    replay: VecDeque<(Agent, Msg)>,
    outbox: Outbox,
    stats: L2Stats,
    /// SharedRO timestamp source for this tile (§3.4).
    tile_ts: Ts,
    /// Epoch of the tile's timestamp source.
    tile_epoch: Epoch,
    /// Increment flag 1: a dirty line was evicted from the L2, or a
    /// GetS hit a modified Uncached line (§3.4, condition 1).
    flag_dirty_path: bool,
    /// Increment flag 2: a line entered the Shared state (§3.4,
    /// condition 2).
    flag_entered_shared: bool,
    /// Last-seen write timestamp per core (`ts_L1` at the L2, §3.5),
    /// indexed by core id; [`Ts::INVALID`] means "never seen".
    ts_l1: Vec<Ts>,
    /// Expected epoch per core's timestamp source, indexed by core id.
    epochs_l1: Vec<Epoch>,
}

impl TsoCcL2 {
    /// Creates the tile controller.
    pub fn new(cfg: TsoCcL2Config) -> Self {
        TsoCcL2 {
            cfg,
            cache: CacheArray::new(cfg.params),
            busy: LineMap::new(),
            replay: VecDeque::new(),
            outbox: Outbox::new(),
            stats: L2Stats::default(),
            tile_ts: Ts::SMALLEST_VALID,
            tile_epoch: Epoch::ZERO,
            flag_dirty_path: false,
            flag_entered_shared: false,
            ts_l1: vec![Ts::INVALID; cfg.n_cores],
            epochs_l1: vec![Epoch::ZERO; cfg.n_cores],
        }
    }

    fn agent(&self) -> Agent {
        Agent::L2(self.cfg.tile)
    }

    fn mem(&self) -> Agent {
        Agent::Mem(self.cfg.tile % self.cfg.n_mem)
    }

    fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.cfg.latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    // ---- timestamp helpers (§3.4 / §3.5) ---------------------------------

    /// Records a writer-supplied timestamp into the tile's last-seen
    /// table, handling epoch changes.
    fn note_writer_ts(&mut self, writer: usize, ts: Ts, epoch: Epoch) {
        if !ts.is_valid() {
            return;
        }
        if epoch != self.epochs_l1[writer] {
            self.epochs_l1[writer] = epoch;
            self.ts_l1[writer] = ts;
            return;
        }
        // `ts` is valid and the sentinel is zero, so this also covers
        // the first-ever record from `writer` (entry-or-insert).
        if ts > self.ts_l1[writer] {
            self.ts_l1[writer] = ts;
        }
    }

    /// The timestamp/epoch to attach to a response for a non-SharedRO
    /// line: the line's own timestamp if the last-seen table proves it
    /// is from the writer's current epoch, the smallest valid timestamp
    /// otherwise (§3.5).
    fn writer_response_ts(&self, line: &Line) -> (usize, Ts, Epoch, Option<TsSource>) {
        let w = line.owner;
        if w == usize::MAX || !line.ts.is_valid() {
            return (w, Ts::INVALID, Epoch::ZERO, None);
        }
        let cur_epoch = self.epochs_l1[w];
        let ts = if line.ts_epoch == cur_epoch && self.ts_l1[w] >= line.ts {
            line.ts
        } else {
            Ts::SMALLEST_VALID
        };
        (w, ts, cur_epoch, Some(TsSource::L1(w)))
    }

    /// Advances the tile's SharedRO timestamp source if an increment
    /// flag is set; returns the timestamp to assign (§3.4).
    fn next_sro_ts(&mut self, now: Cycle) -> (Ts, Epoch) {
        if !self.cfg.proto.sro_ts {
            return (Ts::INVALID, Epoch::ZERO);
        }
        if self.flag_dirty_path || self.flag_entered_shared {
            self.flag_dirty_path = false;
            self.flag_entered_shared = false;
            let max = if self.cfg.proto.sro_ts_bits() >= 63 {
                u64::MAX
            } else {
                (1u64 << self.cfg.proto.sro_ts_bits()) - 1
            };
            if self.tile_ts.as_u64() >= max {
                // Reset the tile source and notify every L1 (§3.5).
                self.tile_epoch = self.tile_epoch.next(self.cfg.proto.epoch_bits);
                self.tile_ts = Ts::SMALLEST_VALID.next();
                self.stats.ts_resets.inc();
                let msg = Msg::TsReset {
                    source: TsSource::L2(self.cfg.tile),
                    epoch: self.tile_epoch,
                };
                for core in 0..self.cfg.n_cores {
                    self.send(now, Agent::L1(core), msg.clone());
                }
            } else {
                self.tile_ts = self.tile_ts.next();
            }
        }
        (self.tile_ts, self.tile_epoch)
    }

    /// Transitions a resident line to SharedRO, assigning a tile
    /// timestamp, and returns (groups already set ∪ extra cores).
    fn make_sharedro(&mut self, now: Cycle, line_addr: LineAddr, cores: &[usize]) {
        let (ts, epoch) = self.next_sro_ts(now);
        let mut groups = 0u32;
        for &c in cores {
            if c != usize::MAX {
                groups |= 1 << self.cfg.group_of(c);
            }
        }
        let l = self.cache.peek_mut(line_addr).expect("resident");
        l.state = State::SharedRO;
        l.groups = groups;
        l.ts = ts;
        l.ts_epoch = epoch;
    }

    // ---- transaction plumbing --------------------------------------------

    fn maybe_finish(&mut self, line: LineAddr) {
        let done = self
            .busy
            .get(line)
            .is_some_and(|b| !b.need_unblock && !b.need_owner_data);
        if done {
            let busy = self.busy.remove(line).expect("checked");
            self.replay.extend(busy.waiting);
        }
    }

    fn start_eviction(&mut self, now: Cycle, victim: LineAddr, old: Line) {
        if old.dirty {
            // Condition 1 for SharedRO timestamp increments: a dirty
            // line leaves the L2 (§3.4).
            self.flag_dirty_path = true;
        }
        match old.state {
            State::Uncached | State::Shared => {
                // Shared lines are untracked and evict silently (§3.2);
                // stale L1 copies age out via their access counters.
                self.stats.writebacks.inc();
                if old.dirty {
                    self.send(
                        now,
                        self.mem(),
                        Msg::MemWrite {
                            line: victim,
                            data: old.data,
                        },
                    );
                }
            }
            State::SharedRO => {
                // SharedRO copies hit forever in L1s, so an L2 eviction
                // must invalidate the sharer groups to preserve write
                // propagation.
                self.stats.writebacks.inc();
                let mut acks = 0u32;
                for core in 0..self.cfg.n_cores {
                    if old.groups & (1 << self.cfg.group_of(core)) != 0 {
                        self.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line: victim,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    if old.dirty {
                        self.send(
                            now,
                            self.mem(),
                            Msg::MemWrite {
                                line: victim,
                                data: old.data,
                            },
                        );
                    }
                    return;
                }
                self.busy.insert(
                    victim,
                    Busy {
                        kind: BusyKind::Dying {
                            acks_left: acks,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        need_unblock: false,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
            }
            State::Exclusive => {
                self.stats.writebacks.inc();
                self.send(now, Agent::L1(old.owner), Msg::Recall { line: victim });
                self.busy.insert(
                    victim,
                    Busy {
                        kind: BusyKind::Dying {
                            acks_left: 0,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        need_unblock: false,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
            }
        }
    }

    fn install(&mut self, now: Cycle, line: LineAddr, entry: Line) {
        let busy = &self.busy;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !busy.contains_key(la));
        match outcome {
            InsertOutcome::Installed => {}
            InsertOutcome::Evicted(victim, old) => self.start_eviction(now, victim, old),
            InsertOutcome::SetFull => {
                panic!("L2[{}]: no evictable way for {line}", self.cfg.tile)
            }
        }
    }

    fn grant_exclusive(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let l = *self.cache.peek(line).expect("resident");
        let (writer, ts, epoch, ts_source) = if l.state == State::SharedRO {
            // SharedRO lines carry the tile's timestamp (§3.4).
            (
                usize::MAX,
                l.ts,
                l.ts_epoch,
                Some(TsSource::L2(self.cfg.tile)),
            )
        } else {
            self.writer_response_ts(&l)
        };
        {
            let lm = self.cache.peek_mut(line).expect("resident");
            lm.state = State::Exclusive;
            lm.owner = requester;
            lm.groups = 0;
        }
        self.busy.insert(
            line,
            Busy {
                kind: BusyKind::Grant,
                need_unblock: true,
                need_owner_data: false,
                waiting: VecDeque::new(),
            },
        );
        self.send(
            now,
            Agent::L1(requester),
            Msg::Data {
                line,
                data: l.data,
                grant: Grant::Exclusive,
                writer,
                ts,
                epoch,
                ts_source,
                acks_expected: 0,
                with_payload: true,
                ack_required: true,
            },
        );
    }

    fn process_request(&mut self, now: Cycle, src: Agent, msg: Msg) {
        let line = match &msg {
            Msg::GetS { line } | Msg::GetX { line } | Msg::PutE { line } => *line,
            Msg::PutM { line, .. } => *line,
            other => unreachable!("not a queueable request: {other:?}"),
        };
        if let Some(busy) = self.busy.get_mut(line) {
            busy.waiting.push_back((src, msg));
            return;
        }
        let requester = match src {
            Agent::L1(i) => i,
            other => panic!("request from non-L1 {other}"),
        };
        match msg {
            Msg::GetS { .. } => self.process_gets(now, line, requester),
            Msg::GetX { .. } => self.process_getx(now, line, requester),
            Msg::PutE { .. } => {
                self.process_put(now, line, requester, None, Ts::INVALID, Epoch::ZERO)
            }
            Msg::PutM {
                data, ts, epoch, ..
            } => self.process_put(now, line, requester, Some(data), ts, epoch),
            _ => unreachable!(),
        }
    }

    fn process_gets(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = self.cache.lookup(line).copied() else {
            self.stats.misses.inc();
            self.busy.insert(
                line,
                Busy {
                    kind: BusyKind::Fetch { requester },
                    need_unblock: true,
                    need_owner_data: false,
                    waiting: VecDeque::new(),
                },
            );
            self.send(now, self.mem(), Msg::MemRead { line });
            return;
        };
        self.stats.hits.inc();
        match l.state {
            State::Uncached => {
                // Reads to lines with no L1 copies get Exclusive grants
                // (§3.2). A modified data path sets increment flag 1.
                if l.dirty {
                    self.flag_dirty_path = true;
                }
                self.grant_exclusive(now, line, requester);
            }
            State::Exclusive => {
                debug_assert_ne!(l.owner, requester, "owner re-requesting GetS");
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::FwdS { requester },
                        need_unblock: false,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(now, Agent::L1(l.owner), Msg::FwdGetS { line, requester });
            }
            State::Shared => {
                // Decay check: untouched-for-long Shared lines become
                // SharedRO (§3.4).
                let decayed = self.cfg.proto.decay_ts_units().is_some_and(|units| {
                    l.ts.is_valid()
                        && l.owner != usize::MAX
                        && self.ts_l1[l.owner].distance_from(l.ts) > units
                });
                if decayed {
                    self.stats.decays.inc();
                    self.make_sharedro(now, line, &[l.owner, requester]);
                    self.respond_sharedro(now, line, requester);
                } else {
                    // Shared responses are immediate and unacknowledged
                    // (§3.2).
                    let (writer, ts, epoch, ts_source) = self.writer_response_ts(&l);
                    self.send(
                        now,
                        Agent::L1(requester),
                        Msg::Data {
                            line,
                            data: l.data,
                            grant: Grant::Shared,
                            writer,
                            ts,
                            epoch,
                            ts_source,
                            acks_expected: 0,
                            with_payload: true,
                            ack_required: false,
                        },
                    );
                }
            }
            State::SharedRO => {
                let lm = self.cache.peek_mut(line).expect("resident");
                lm.groups |= 1 << self.cfg.group_of(requester);
                self.respond_sharedro(now, line, requester);
            }
        }
    }

    fn respond_sharedro(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let l = *self.cache.peek(line).expect("resident");
        debug_assert_eq!(l.state, State::SharedRO);
        let ts_source = if self.cfg.proto.sro_ts {
            Some(TsSource::L2(self.cfg.tile))
        } else {
            None
        };
        self.send(
            now,
            Agent::L1(requester),
            Msg::Data {
                line,
                data: l.data,
                grant: Grant::SharedRO,
                writer: usize::MAX,
                ts: l.ts,
                epoch: l.ts_epoch,
                ts_source,
                acks_expected: 0,
                with_payload: true,
                ack_required: false,
            },
        );
    }

    fn process_getx(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = self.cache.lookup(line).copied() else {
            self.stats.misses.inc();
            self.busy.insert(
                line,
                Busy {
                    kind: BusyKind::Fetch { requester },
                    need_unblock: true,
                    need_owner_data: false,
                    waiting: VecDeque::new(),
                },
            );
            self.send(now, self.mem(), Msg::MemRead { line });
            return;
        };
        self.stats.hits.inc();
        match l.state {
            State::Uncached | State::Shared => {
                // Writes to Shared lines respond immediately with the
                // full line; stale L1 copies expire via their access
                // counters and self-invalidation (§3.2).
                self.grant_exclusive(now, line, requester);
            }
            State::Exclusive => {
                debug_assert_ne!(l.owner, requester, "owner re-requesting GetX");
                {
                    let lm = self.cache.peek_mut(line).expect("resident");
                    lm.owner = requester;
                }
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::FwdX,
                        need_unblock: true,
                        need_owner_data: false,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(now, Agent::L1(l.owner), Msg::FwdGetX { line, requester });
            }
            State::SharedRO => {
                // Broadcast invalidation to the coarse sharer groups,
                // collect acks at the L2, then grant (§3.4).
                self.stats.sro_invalidations.inc();
                let mut acks = 0u32;
                for core in 0..self.cfg.n_cores {
                    if core != requester && l.groups & (1 << self.cfg.group_of(core)) != 0 {
                        self.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    self.grant_exclusive(now, line, requester);
                } else {
                    self.busy.insert(
                        line,
                        Busy {
                            kind: BusyKind::SroInv {
                                requester,
                                acks_left: acks,
                            },
                            need_unblock: true,
                            need_owner_data: true,
                            waiting: VecDeque::new(),
                        },
                    );
                }
            }
        }
    }

    fn process_put(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: usize,
        data: Option<LineData>,
        ts: Ts,
        epoch: Epoch,
    ) {
        if let Some(l) = self.cache.peek_mut(line) {
            if l.state == State::Exclusive && l.owner == from {
                l.state = State::Uncached;
                if let Some(d) = data {
                    l.data = d;
                    l.dirty = true;
                    l.ts = ts;
                    l.ts_epoch = epoch;
                }
                // Owner stays recorded as the last writer.
                if data.is_some() {
                    self.note_writer_ts(from, ts, epoch);
                }
            }
            // Otherwise the PUT is stale; just acknowledge.
        }
        self.send(now, Agent::L1(from), Msg::PutAck { line });
    }
}

impl CacheController for TsoCcL2 {
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg) {
        match msg {
            Msg::GetS { .. } | Msg::GetX { .. } | Msg::PutE { .. } | Msg::PutM { .. } => {
                self.process_request(now, src, msg);
            }
            Msg::Unblock { line, .. } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: Unblock for idle {line}", self.cfg.tile));
                busy.need_unblock = false;
                self.maybe_finish(line);
            }
            Msg::DowngradeData {
                line,
                data,
                dirty,
                ts,
                epoch,
                from,
            } => {
                let requester = {
                    let busy = self.busy.get_mut(line).unwrap_or_else(|| {
                        panic!("L2[{}]: stray DowngradeData {line}", self.cfg.tile)
                    });
                    let BusyKind::FwdS { requester } = busy.kind else {
                        panic!("L2[{}]: DowngradeData outside FwdS", self.cfg.tile);
                    };
                    busy.need_owner_data = false;
                    requester
                };
                self.note_writer_ts(from, ts, epoch);
                if dirty {
                    // The owner modified the line: it becomes Shared with
                    // the owner recorded as last writer (§3.2), setting
                    // increment flag 2 (§3.4).
                    let l = self.cache.peek_mut(line).expect("forwarded line resident");
                    l.state = State::Shared;
                    l.owner = from;
                    l.data = data;
                    l.dirty = true;
                    l.ts = ts;
                    l.ts_epoch = epoch;
                    self.flag_entered_shared = true;
                } else {
                    // Clean downgrade: the line was not modified by the
                    // previous owner and becomes SharedRO (§3.4).
                    self.make_sharedro(now, line, &[from, requester]);
                }
                self.maybe_finish(line);
            }
            Msg::RecallData {
                line,
                data,
                dirty,
                ts,
                epoch,
                from,
            } => {
                let busy = self
                    .busy
                    .remove(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray RecallData {line}", self.cfg.tile));
                let BusyKind::Dying {
                    data: old_data,
                    dirty: old_dirty,
                    ..
                } = busy.kind
                else {
                    panic!("L2[{}]: RecallData outside Dying", self.cfg.tile);
                };
                self.note_writer_ts(from, ts, epoch);
                let (wb_data, wb_dirty) = if dirty {
                    (data, true)
                } else {
                    (old_data, old_dirty)
                };
                if wb_dirty {
                    self.flag_dirty_path = true;
                    self.send(
                        now,
                        self.mem(),
                        Msg::MemWrite {
                            line,
                            data: wb_data,
                        },
                    );
                }
                self.replay.extend(busy.waiting);
            }
            Msg::InvAckToL2 { line, .. } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray InvAckToL2 {line}", self.cfg.tile));
                match &mut busy.kind {
                    BusyKind::SroInv {
                        requester,
                        acks_left,
                    } => {
                        *acks_left -= 1;
                        if *acks_left == 0 {
                            let requester = *requester;
                            busy.need_owner_data = false;
                            // The grant below replaces this busy entry.
                            let waiting = std::mem::take(&mut busy.waiting);
                            self.busy.remove(line);
                            self.grant_exclusive(now, line, requester);
                            self.busy
                                .get_mut(line)
                                .expect("grant_exclusive sets busy")
                                .waiting = waiting;
                        }
                    }
                    BusyKind::Dying {
                        acks_left,
                        data,
                        dirty,
                    } => {
                        *acks_left -= 1;
                        if *acks_left == 0 {
                            let (data, dirty) = (*data, *dirty);
                            let busy = self.busy.remove(line).expect("present");
                            if dirty {
                                self.send(now, self.mem(), Msg::MemWrite { line, data });
                            }
                            self.replay.extend(busy.waiting);
                        }
                    }
                    other => panic!("L2[{}]: InvAckToL2 during {other:?}", self.cfg.tile),
                }
            }
            Msg::MemData { line, data } => {
                let requester = {
                    let busy = self
                        .busy
                        .get_mut(line)
                        .unwrap_or_else(|| panic!("L2[{}]: stray MemData {line}", self.cfg.tile));
                    let BusyKind::Fetch { requester } = busy.kind else {
                        panic!("L2[{}]: MemData outside Fetch", self.cfg.tile);
                    };
                    busy.kind = BusyKind::Grant;
                    requester
                };
                // Timestamps are not propagated to main memory (§3.3):
                // the refetched line has an invalid timestamp.
                self.install(
                    now,
                    line,
                    Line {
                        state: State::Uncached,
                        data,
                        dirty: false,
                        owner: usize::MAX,
                        groups: 0,
                        ts: Ts::INVALID,
                        ts_epoch: Epoch::ZERO,
                    },
                );
                // Temporarily drop the busy entry so grant_exclusive can
                // install its own (preserving queued waiters).
                let busy = self.busy.remove(line).expect("present");
                self.grant_exclusive(now, line, requester);
                self.busy
                    .get_mut(line)
                    .expect("grant_exclusive sets busy")
                    .waiting = busy.waiting;
            }
            Msg::TsReset { source, epoch } => {
                let TsSource::L1(core) = source else {
                    panic!("L2[{}]: TsReset from an L2 tile", self.cfg.tile);
                };
                self.ts_l1[core] = Ts::INVALID;
                self.epochs_l1[core] = epoch;
            }
            other => panic!("L2[{}]: unexpected {other:?}", self.cfg.tile),
        }
    }

    fn tick(&mut self, now: Cycle) {
        let pending: Vec<_> = self.replay.drain(..).collect();
        for (src, msg) in pending {
            self.process_request(now, src, msg);
        }
    }

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.busy.is_empty() && self.replay.is_empty() && self.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // Same contract as the MESI tile: replay is empty between
        // steps, so the outbox head is the only self-driven deadline.
        if !self.replay.is_empty() {
            return Cycle::ZERO;
        }
        self.outbox.next_ready()
    }
}

impl L2Controller for TsoCcL2 {
    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}
