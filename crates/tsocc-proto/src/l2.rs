//! TSO-CC NUCA L2 tile — the sharing-vector-free directory — as a
//! policy over the shared [`L2Chassis`].

use tsocc_coherence::{Agent, Epoch, Grant, L2Chassis, L2Ctl, L2Policy, Msg, Ts, TsSource, Txn};
use tsocc_mem::{CacheParams, LineAddr, LineData};
use tsocc_sim::Cycle;

use crate::config::TsoCcConfig;

/// Directory state of a resident line (absence = not present; §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Valid in the L2, no L1 copies.
    Uncached,
    /// Private: `owner` holds the line Exclusive/Modified.
    Exclusive,
    /// Shared, untracked; `owner` records the *last writer*.
    Shared,
    /// Shared read-only; `groups` is the coarse sharer group vector.
    SharedRO,
}

/// One resident directory line (opaque outside the policy).
#[derive(Clone, Copy, Debug)]
pub struct Line {
    state: State,
    data: LineData,
    /// Whether the L2 copy differs from memory.
    dirty: bool,
    /// `b.owner`: owner (Exclusive), last writer (Shared/Uncached);
    /// `usize::MAX` when unknown (fresh from memory).
    owner: usize,
    /// Coarse sharer group vector (SharedRO only) — the `b.owner` bits
    /// reused, one bit per group of cores (§3.4).
    groups: u32,
    /// `b.ts`: last-written timestamp (Shared/Uncached/Exclusive) or the
    /// tile's SharedRO timestamp (SharedRO).
    ts: Ts,
    /// Epoch of the source `ts` was drawn from.
    ts_epoch: Epoch,
}

/// Transaction states of the TSO-CC directory (opaque outside the
/// policy).
#[derive(Debug)]
pub enum BusyKind {
    /// Waiting for memory data, then granting Exclusive to `requester`.
    Fetch { requester: usize },
    /// Waiting for the requester's Unblock after an Exclusive grant.
    Grant,
    /// Waiting for the old owner's DowngradeData after forwarding GetS.
    FwdS { requester: usize },
    /// Waiting for the requester's Unblock after forwarding GetX.
    FwdX,
    /// SharedRO write: collecting invalidation acks before granting
    /// Exclusive to `requester` (§3.4).
    SroInv { requester: usize, acks_left: u32 },
    /// L2 eviction of a SharedRO (acks) or Exclusive (recall) line.
    Dying {
        acks_left: u32,
        data: LineData,
        dirty: bool,
    },
}

/// Structural configuration of a TSO-CC L2 tile.
#[derive(Clone, Copy, Debug)]
pub struct TsoCcL2Config {
    /// This tile's index.
    pub tile: usize,
    /// Number of cores.
    pub n_cores: usize,
    /// Number of memory controllers.
    pub n_mem: usize,
    /// Tile geometry (1 MiB 16-way in Table 2).
    pub params: CacheParams,
    /// Array access latency charged before responses (cycles).
    pub latency: u64,
    /// Protocol parameters.
    pub proto: TsoCcConfig,
}

impl TsoCcL2Config {
    /// The paper's Table 2 tile with the given protocol parameters.
    pub fn table2(tile: usize, n_cores: usize, n_mem: usize, proto: TsoCcConfig) -> Self {
        TsoCcL2Config {
            tile,
            n_cores,
            n_mem,
            params: CacheParams::from_capacity(1024 * 1024, 16),
            latency: 20,
            proto,
        }
    }

    /// Builds the tile controller: a [`TsoCcL2Policy`] over a fresh
    /// chassis.
    pub fn build(self) -> TsoCcL2 {
        L2Ctl::assemble(
            L2Chassis::new(
                self.tile,
                self.n_cores,
                self.n_mem,
                self.latency,
                self.params,
            ),
            TsoCcL2Policy::new(self.proto, self.n_cores),
        )
    }
}

/// One TSO-CC L2 tile.
pub type TsoCcL2 = L2Ctl<TsoCcL2Policy>;

/// The TSO-CC directory transition rules and per-tile protocol state.
///
/// Owns the tile's SharedRO timestamp source, the increment flags of
/// §3.4, and the per-core last-seen timestamp table of §3.5.
#[derive(Debug)]
pub struct TsoCcL2Policy {
    proto: TsoCcConfig,
    /// SharedRO timestamp source for this tile (§3.4).
    tile_ts: Ts,
    /// Epoch of the tile's timestamp source.
    tile_epoch: Epoch,
    /// Increment flag 1: a dirty line was evicted from the L2, or a
    /// GetS hit a modified Uncached line (§3.4, condition 1).
    flag_dirty_path: bool,
    /// Increment flag 2: a line entered the Shared state (§3.4,
    /// condition 2).
    flag_entered_shared: bool,
    /// Last-seen write timestamp per core (`ts_L1` at the L2, §3.5),
    /// indexed by core id; [`Ts::INVALID`] means "never seen".
    ts_l1: Vec<Ts>,
    /// Expected epoch per core's timestamp source, indexed by core id.
    epochs_l1: Vec<Epoch>,
}

type Ch = L2Chassis<Line, BusyKind>;

impl TsoCcL2Policy {
    /// Creates the policy state for one tile.
    fn new(proto: TsoCcConfig, n_cores: usize) -> Self {
        TsoCcL2Policy {
            proto,
            tile_ts: Ts::SMALLEST_VALID,
            tile_epoch: Epoch::ZERO,
            flag_dirty_path: false,
            flag_entered_shared: false,
            ts_l1: vec![Ts::INVALID; n_cores],
            epochs_l1: vec![Epoch::ZERO; n_cores],
        }
    }

    /// Number of coarse sharer groups: `b.owner` has `log2(n)` bits to
    /// reuse (§3.4), so there are `log2(n_cores)` groups.
    fn n_groups(&self, n_cores: usize) -> usize {
        usize::BITS as usize - (n_cores.max(2) - 1).leading_zeros() as usize
    }

    /// The coarse group a core belongs to.
    fn group_of(&self, n_cores: usize, core: usize) -> usize {
        core % self.n_groups(n_cores)
    }

    // ---- timestamp helpers (§3.4 / §3.5) ---------------------------------

    /// Records a writer-supplied timestamp into the tile's last-seen
    /// table, handling epoch changes.
    fn note_writer_ts(&mut self, writer: usize, ts: Ts, epoch: Epoch) {
        if !ts.is_valid() {
            return;
        }
        if epoch != self.epochs_l1[writer] {
            self.epochs_l1[writer] = epoch;
            self.ts_l1[writer] = ts;
            return;
        }
        // `ts` is valid and the sentinel is zero, so this also covers
        // the first-ever record from `writer` (entry-or-insert).
        if ts > self.ts_l1[writer] {
            self.ts_l1[writer] = ts;
        }
    }

    /// The timestamp/epoch to attach to a response for a non-SharedRO
    /// line: the line's own timestamp if the last-seen table proves it
    /// is from the writer's current epoch, the smallest valid timestamp
    /// otherwise (§3.5).
    fn writer_response_ts(&self, line: &Line) -> (usize, Ts, Epoch, Option<TsSource>) {
        let w = line.owner;
        if w == usize::MAX || !line.ts.is_valid() {
            return (w, Ts::INVALID, Epoch::ZERO, None);
        }
        let cur_epoch = self.epochs_l1[w];
        let ts = if line.ts_epoch == cur_epoch && self.ts_l1[w] >= line.ts {
            line.ts
        } else {
            Ts::SMALLEST_VALID
        };
        (w, ts, cur_epoch, Some(TsSource::L1(w)))
    }

    /// Advances the tile's SharedRO timestamp source if an increment
    /// flag is set; returns the timestamp to assign (§3.4).
    fn next_sro_ts(&mut self, ch: &mut Ch, now: Cycle) -> (Ts, Epoch) {
        if !self.proto.sro_ts {
            return (Ts::INVALID, Epoch::ZERO);
        }
        if self.flag_dirty_path || self.flag_entered_shared {
            self.flag_dirty_path = false;
            self.flag_entered_shared = false;
            let max = if self.proto.sro_ts_bits() >= 63 {
                u64::MAX
            } else {
                (1u64 << self.proto.sro_ts_bits()) - 1
            };
            if self.tile_ts.as_u64() >= max {
                // Reset the tile source and notify every L1 (§3.5).
                self.tile_epoch = self.tile_epoch.next(self.proto.epoch_bits);
                self.tile_ts = Ts::SMALLEST_VALID.next();
                ch.stats.ts_resets.inc();
                let msg = Msg::TsReset {
                    source: TsSource::L2(ch.tile()),
                    epoch: self.tile_epoch,
                };
                for core in 0..ch.n_cores() {
                    ch.send(now, Agent::L1(core), msg.clone());
                }
            } else {
                self.tile_ts = self.tile_ts.next();
            }
        }
        (self.tile_ts, self.tile_epoch)
    }

    /// Transitions a resident line to SharedRO, assigning a tile
    /// timestamp, and returns (groups already set ∪ extra cores).
    fn make_sharedro(&mut self, ch: &mut Ch, now: Cycle, line_addr: LineAddr, cores: &[usize]) {
        let (ts, epoch) = self.next_sro_ts(ch, now);
        let n_cores = ch.n_cores();
        let mut groups = 0u32;
        for &c in cores {
            if c != usize::MAX {
                groups |= 1 << self.group_of(n_cores, c);
            }
        }
        let l = ch.cache.peek_mut(line_addr).expect("resident");
        l.state = State::SharedRO;
        l.groups = groups;
        l.ts = ts;
        l.ts_epoch = epoch;
    }

    // ---- transaction plumbing --------------------------------------------

    fn start_eviction(&mut self, ch: &mut Ch, now: Cycle, victim: LineAddr, old: Line) {
        if old.dirty {
            // Condition 1 for SharedRO timestamp increments: a dirty
            // line leaves the L2 (§3.4).
            self.flag_dirty_path = true;
        }
        match old.state {
            State::Uncached | State::Shared => {
                // Shared lines are untracked and evict silently (§3.2);
                // stale L1 copies age out via their access counters.
                ch.stats.writebacks.inc();
                if old.dirty {
                    let mem = ch.mem();
                    ch.send(
                        now,
                        mem,
                        Msg::MemWrite {
                            line: victim,
                            data: old.data,
                        },
                    );
                }
            }
            State::SharedRO => {
                // SharedRO copies hit forever in L1s, so an L2 eviction
                // must invalidate the sharer groups to preserve write
                // propagation.
                ch.stats.writebacks.inc();
                let n_cores = ch.n_cores();
                let mut acks = 0u32;
                for core in 0..n_cores {
                    if old.groups & (1 << self.group_of(n_cores, core)) != 0 {
                        ch.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line: victim,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    if old.dirty {
                        let mem = ch.mem();
                        ch.send(
                            now,
                            mem,
                            Msg::MemWrite {
                                line: victim,
                                data: old.data,
                            },
                        );
                    }
                    return;
                }
                ch.begin(
                    victim,
                    Txn::new(
                        BusyKind::Dying {
                            acks_left: acks,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        false,
                        true,
                    ),
                );
            }
            State::Exclusive => {
                ch.stats.writebacks.inc();
                ch.send(now, Agent::L1(old.owner), Msg::Recall { line: victim });
                ch.begin(
                    victim,
                    Txn::new(
                        BusyKind::Dying {
                            acks_left: 0,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        false,
                        true,
                    ),
                );
            }
        }
    }

    fn install(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, entry: Line) {
        if let Some((victim, old)) = ch.install(now, line, entry) {
            self.start_eviction(ch, now, victim, old);
        }
    }

    fn grant_exclusive(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, requester: usize) {
        let l = *ch.cache.peek(line).expect("resident");
        let (writer, ts, epoch, ts_source) = if l.state == State::SharedRO {
            // SharedRO lines carry the tile's timestamp (§3.4).
            (usize::MAX, l.ts, l.ts_epoch, Some(TsSource::L2(ch.tile())))
        } else {
            self.writer_response_ts(&l)
        };
        {
            let lm = ch.cache.peek_mut(line).expect("resident");
            lm.state = State::Exclusive;
            lm.owner = requester;
            lm.groups = 0;
        }
        ch.begin(line, Txn::new(BusyKind::Grant, true, false));
        ch.send(
            now,
            Agent::L1(requester),
            Msg::Data {
                line,
                data: l.data,
                grant: Grant::Exclusive,
                writer,
                ts,
                epoch,
                ts_source,
                acks_expected: 0,
                with_payload: true,
                ack_required: true,
            },
        );
    }

    fn respond_sharedro(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, requester: usize) {
        let l = *ch.cache.peek(line).expect("resident");
        debug_assert_eq!(l.state, State::SharedRO);
        let ts_source = if self.proto.sro_ts {
            Some(TsSource::L2(ch.tile()))
        } else {
            None
        };
        ch.send(
            now,
            Agent::L1(requester),
            Msg::Data {
                line,
                data: l.data,
                grant: Grant::SharedRO,
                writer: usize::MAX,
                ts: l.ts,
                epoch: l.ts_epoch,
                ts_source,
                acks_expected: 0,
                with_payload: true,
                ack_required: false,
            },
        );
    }
}

impl L2Policy for TsoCcL2Policy {
    type Line = Line;
    type Busy = BusyKind;

    fn gets(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = ch.cache.lookup(line).copied() else {
            ch.stats.misses.inc();
            ch.begin(line, Txn::new(BusyKind::Fetch { requester }, true, false));
            let mem = ch.mem();
            ch.send(now, mem, Msg::MemRead { line });
            return;
        };
        ch.stats.hits.inc();
        match l.state {
            State::Uncached => {
                // Reads to lines with no L1 copies get Exclusive grants
                // (§3.2). A modified data path sets increment flag 1.
                if l.dirty {
                    self.flag_dirty_path = true;
                }
                self.grant_exclusive(ch, now, line, requester);
            }
            State::Exclusive => {
                debug_assert_ne!(l.owner, requester, "owner re-requesting GetS");
                ch.begin(line, Txn::new(BusyKind::FwdS { requester }, false, true));
                ch.send(now, Agent::L1(l.owner), Msg::FwdGetS { line, requester });
            }
            State::Shared => {
                // Decay check: untouched-for-long Shared lines become
                // SharedRO (§3.4).
                let decayed = self.proto.decay_ts_units().is_some_and(|units| {
                    l.ts.is_valid()
                        && l.owner != usize::MAX
                        && self.ts_l1[l.owner].distance_from(l.ts) > units
                });
                if decayed {
                    ch.stats.decays.inc();
                    self.make_sharedro(ch, now, line, &[l.owner, requester]);
                    self.respond_sharedro(ch, now, line, requester);
                } else {
                    // Shared responses are immediate and unacknowledged
                    // (§3.2).
                    let (writer, ts, epoch, ts_source) = self.writer_response_ts(&l);
                    ch.send(
                        now,
                        Agent::L1(requester),
                        Msg::Data {
                            line,
                            data: l.data,
                            grant: Grant::Shared,
                            writer,
                            ts,
                            epoch,
                            ts_source,
                            acks_expected: 0,
                            with_payload: true,
                            ack_required: false,
                        },
                    );
                }
            }
            State::SharedRO => {
                let n_cores = ch.n_cores();
                let group = 1 << self.group_of(n_cores, requester);
                let lm = ch.cache.peek_mut(line).expect("resident");
                lm.groups |= group;
                self.respond_sharedro(ch, now, line, requester);
            }
        }
    }

    fn getx(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = ch.cache.lookup(line).copied() else {
            ch.stats.misses.inc();
            ch.begin(line, Txn::new(BusyKind::Fetch { requester }, true, false));
            let mem = ch.mem();
            ch.send(now, mem, Msg::MemRead { line });
            return;
        };
        ch.stats.hits.inc();
        match l.state {
            State::Uncached | State::Shared => {
                // Writes to Shared lines respond immediately with the
                // full line; stale L1 copies expire via their access
                // counters and self-invalidation (§3.2).
                self.grant_exclusive(ch, now, line, requester);
            }
            State::Exclusive => {
                debug_assert_ne!(l.owner, requester, "owner re-requesting GetX");
                {
                    let lm = ch.cache.peek_mut(line).expect("resident");
                    lm.owner = requester;
                }
                ch.begin(line, Txn::new(BusyKind::FwdX, true, false));
                ch.send(now, Agent::L1(l.owner), Msg::FwdGetX { line, requester });
            }
            State::SharedRO => {
                // Broadcast invalidation to the coarse sharer groups,
                // collect acks at the L2, then grant (§3.4).
                ch.stats.sro_invalidations.inc();
                let n_cores = ch.n_cores();
                let mut acks = 0u32;
                for core in 0..n_cores {
                    if core != requester && l.groups & (1 << self.group_of(n_cores, core)) != 0 {
                        ch.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    self.grant_exclusive(ch, now, line, requester);
                } else {
                    ch.begin(
                        line,
                        Txn::new(
                            BusyKind::SroInv {
                                requester,
                                acks_left: acks,
                            },
                            true,
                            true,
                        ),
                    );
                }
            }
        }
    }

    fn put(
        &mut self,
        ch: &mut Ch,
        now: Cycle,
        line: LineAddr,
        from: usize,
        data: Option<LineData>,
        ts: Ts,
        epoch: Epoch,
    ) {
        if let Some(l) = ch.cache.peek_mut(line) {
            if l.state == State::Exclusive && l.owner == from {
                l.state = State::Uncached;
                if let Some(d) = data {
                    l.data = d;
                    l.dirty = true;
                    l.ts = ts;
                    l.ts_epoch = epoch;
                }
                // Owner stays recorded as the last writer.
                if data.is_some() {
                    self.note_writer_ts(from, ts, epoch);
                }
            }
            // Otherwise the PUT is stale; just acknowledge.
        }
        ch.send(now, Agent::L1(from), Msg::PutAck { line });
    }

    fn handle_message(&mut self, ch: &mut Ch, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::DowngradeData {
                line,
                data,
                dirty,
                ts,
                epoch,
                from,
            } => {
                let tile = ch.tile();
                let requester = {
                    let txn = ch
                        .busy
                        .get_mut(line)
                        .unwrap_or_else(|| panic!("L2[{tile}]: stray DowngradeData {line}"));
                    let BusyKind::FwdS { requester } = txn.kind else {
                        panic!("L2[{tile}]: DowngradeData outside FwdS");
                    };
                    txn.need_owner_data = false;
                    requester
                };
                self.note_writer_ts(from, ts, epoch);
                if dirty {
                    // The owner modified the line: it becomes Shared with
                    // the owner recorded as last writer (§3.2), setting
                    // increment flag 2 (§3.4).
                    let l = ch.cache.peek_mut(line).expect("forwarded line resident");
                    l.state = State::Shared;
                    l.owner = from;
                    l.data = data;
                    l.dirty = true;
                    l.ts = ts;
                    l.ts_epoch = epoch;
                    self.flag_entered_shared = true;
                } else {
                    // Clean downgrade: the line was not modified by the
                    // previous owner and becomes SharedRO (§3.4).
                    self.make_sharedro(ch, now, line, &[from, requester]);
                }
                ch.maybe_finish(line);
            }
            Msg::RecallData {
                line,
                data,
                dirty,
                ts,
                epoch,
                from,
            } => {
                let tile = ch.tile();
                let txn = ch
                    .finish(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray RecallData {line}"));
                let BusyKind::Dying {
                    data: old_data,
                    dirty: old_dirty,
                    ..
                } = txn.kind
                else {
                    panic!("L2[{tile}]: RecallData outside Dying");
                };
                self.note_writer_ts(from, ts, epoch);
                let (wb_data, wb_dirty) = if dirty {
                    (data, true)
                } else {
                    (old_data, old_dirty)
                };
                if wb_dirty {
                    self.flag_dirty_path = true;
                    let mem = ch.mem();
                    ch.send(
                        now,
                        mem,
                        Msg::MemWrite {
                            line,
                            data: wb_data,
                        },
                    );
                }
            }
            Msg::InvAckToL2 { line, .. } => {
                let tile = ch.tile();
                let txn = ch
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray InvAckToL2 {line}"));
                match &mut txn.kind {
                    BusyKind::SroInv {
                        requester,
                        acks_left,
                    } => {
                        *acks_left -= 1;
                        if *acks_left == 0 {
                            let requester = *requester;
                            txn.need_owner_data = false;
                            // The grant below replaces this busy entry.
                            let waiting = std::mem::take(&mut txn.waiting);
                            ch.busy.remove(line);
                            self.grant_exclusive(ch, now, line, requester);
                            ch.busy
                                .get_mut(line)
                                .expect("grant_exclusive sets busy")
                                .waiting = waiting;
                        }
                    }
                    BusyKind::Dying {
                        acks_left,
                        data,
                        dirty,
                    } => {
                        *acks_left -= 1;
                        if *acks_left == 0 {
                            let (data, dirty) = (*data, *dirty);
                            ch.finish(line).expect("present");
                            if dirty {
                                let mem = ch.mem();
                                ch.send(now, mem, Msg::MemWrite { line, data });
                            }
                        }
                    }
                    other => panic!("L2[{tile}]: InvAckToL2 during {other:?}"),
                }
            }
            Msg::MemData { line, data } => {
                let tile = ch.tile();
                let requester = {
                    let txn = ch
                        .busy
                        .get_mut(line)
                        .unwrap_or_else(|| panic!("L2[{tile}]: stray MemData {line}"));
                    let BusyKind::Fetch { requester } = txn.kind else {
                        panic!("L2[{tile}]: MemData outside Fetch");
                    };
                    txn.kind = BusyKind::Grant;
                    requester
                };
                // Timestamps are not propagated to main memory (§3.3):
                // the refetched line has an invalid timestamp.
                self.install(
                    ch,
                    now,
                    line,
                    Line {
                        state: State::Uncached,
                        data,
                        dirty: false,
                        owner: usize::MAX,
                        groups: 0,
                        ts: Ts::INVALID,
                        ts_epoch: Epoch::ZERO,
                    },
                );
                // Temporarily drop the busy entry so grant_exclusive can
                // install its own (preserving queued waiters).
                let txn = ch.busy.remove(line).expect("present");
                self.grant_exclusive(ch, now, line, requester);
                ch.busy
                    .get_mut(line)
                    .expect("grant_exclusive sets busy")
                    .waiting = txn.waiting;
            }
            Msg::TsReset { source, epoch } => {
                let TsSource::L1(core) = source else {
                    panic!("L2[{}]: TsReset from an L2 tile", ch.tile());
                };
                self.ts_l1[core] = Ts::INVALID;
                self.epochs_l1[core] = epoch;
            }
            other => panic!("L2[{}]: unexpected {other:?}", ch.tile()),
        }
    }
}
