//! Protocol configuration: the paper's `TSO-CC-Bmaxacc-Bts-Bwritegroup`
//! naming (§4.2).

/// Timestamp parameters for the transitive-reduction optimization
/// (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TsParams {
    /// Timestamp width in bits (`Bts`); the counter resets after
    /// `2^ts_bits - 1`.
    pub ts_bits: u32,
    /// Write-group size exponent (`Bwrite-group`): `2^wg_bits`
    /// consecutive writes share one timestamp.
    pub write_group_bits: u32,
}

impl TsParams {
    /// Maximum raw timestamp value before a reset.
    pub fn max_ts(&self) -> u64 {
        if self.ts_bits >= 63 {
            u64::MAX
        } else {
            (1u64 << self.ts_bits) - 1
        }
    }

    /// Writes per timestamp group.
    pub fn group_size(&self) -> u64 {
        1u64 << self.write_group_bits
    }
}

/// Full TSO-CC protocol configuration.
///
/// # Examples
///
/// ```
/// use tsocc_proto::TsoCcConfig;
///
/// let best = TsoCcConfig::realistic(12, 3); // TSO-CC-4-12-3
/// assert_eq!(best.name(), "TSO-CC-4-12-3");
/// assert_eq!(best.max_acc, 16);
///
/// let ablation = TsoCcConfig::cc_shared_to_l2();
/// assert_eq!(ablation.max_acc, 0, "Shared lines never hit in L1");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TsoCcConfig {
    /// Maximum consecutive L1 hits to a Shared line before a forced
    /// re-request (`2^Bmaxacc`; 16 in all evaluated configs). Zero
    /// disables Shared caching entirely (CC-shared-to-L2).
    pub max_acc: u64,
    /// Per-core write timestamps (§3.3); `None` = TSO-CC-basic.
    pub write_ts: Option<TsParams>,
    /// L2-sourced SharedRO timestamps (§3.4). Enabled for every TSO-CC
    /// variant; disabled for CC-shared-to-L2 (which has no timestamps).
    pub sro_ts: bool,
    /// Shared→SharedRO decay threshold in writes (256 in §4.2);
    /// requires `write_ts`.
    pub decay_writes: Option<u64>,
    /// Epoch-id width (`Bepoch-id`, 3 bits in Figure 2).
    pub epoch_bits: u32,
}

impl Default for TsoCcConfig {
    /// The paper's best realistic configuration, TSO-CC-4-12-3.
    fn default() -> Self {
        TsoCcConfig::realistic(12, 3)
    }
}

impl TsoCcConfig {
    /// `CC-shared-to-L2`: no sharing list and no Shared caching — reads
    /// to Shared lines always go to the L2.
    pub fn cc_shared_to_l2() -> Self {
        TsoCcConfig {
            max_acc: 0,
            write_ts: None,
            sro_ts: false,
            decay_writes: None,
            epoch_bits: 3,
        }
    }

    /// `TSO-CC-4-basic`: the §3.2 protocol plus the SharedRO
    /// optimization, without transitive-reduction timestamps.
    pub fn basic() -> Self {
        TsoCcConfig {
            max_acc: 16,
            write_ts: None,
            sro_ts: true,
            decay_writes: None,
            epoch_bits: 3,
        }
    }

    /// `TSO-CC-4-noreset`: effectively infinite timestamps (the paper
    /// uses 31 bits in simulation; we use 62), write-group size 1.
    pub fn noreset() -> Self {
        TsoCcConfig {
            max_acc: 16,
            write_ts: Some(TsParams {
                ts_bits: 62,
                write_group_bits: 0,
            }),
            sro_ts: true,
            decay_writes: Some(256),
            epoch_bits: 3,
        }
    }

    /// `TSO-CC-4-<ts_bits>-<wg_bits>`: a realistic configuration, e.g.
    /// `realistic(12, 3)` is the paper's best configuration
    /// TSO-CC-4-12-3.
    pub fn realistic(ts_bits: u32, write_group_bits: u32) -> Self {
        TsoCcConfig {
            max_acc: 16,
            write_ts: Some(TsParams {
                ts_bits,
                write_group_bits,
            }),
            sro_ts: true,
            decay_writes: Some(256),
            epoch_bits: 3,
        }
    }

    /// The paper's name for this configuration.
    pub fn name(&self) -> String {
        match self.write_ts {
            None if self.max_acc == 0 => "CC-shared-to-L2".to_string(),
            None => "TSO-CC-4-basic".to_string(),
            Some(ts) if ts.ts_bits >= 62 => "TSO-CC-4-noreset".to_string(),
            Some(ts) => format!("TSO-CC-4-{}-{}", ts.ts_bits, ts.write_group_bits),
        }
    }

    /// Decay threshold converted to timestamp units (write-groups).
    pub fn decay_ts_units(&self) -> Option<u64> {
        let ts = self.write_ts?;
        let writes = self.decay_writes?;
        Some((writes >> ts.write_group_bits).max(1))
    }

    /// Timestamp width used by L2 SharedRO timestamp sources: `Bts` when
    /// write timestamps are configured, 31 bits otherwise (TSO-CC-basic
    /// has no `Bts`; the paper's simulator uses 31-bit timestamps where
    /// resets should not occur).
    pub fn sro_ts_bits(&self) -> u32 {
        self.write_ts.map_or(31, |t| t.ts_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_names() {
        assert_eq!(TsoCcConfig::cc_shared_to_l2().name(), "CC-shared-to-L2");
        assert_eq!(TsoCcConfig::basic().name(), "TSO-CC-4-basic");
        assert_eq!(TsoCcConfig::noreset().name(), "TSO-CC-4-noreset");
        assert_eq!(TsoCcConfig::realistic(12, 3).name(), "TSO-CC-4-12-3");
        assert_eq!(TsoCcConfig::realistic(12, 0).name(), "TSO-CC-4-12-0");
        assert_eq!(TsoCcConfig::realistic(9, 3).name(), "TSO-CC-4-9-3");
    }

    #[test]
    fn ts_params_arithmetic() {
        let p = TsParams {
            ts_bits: 12,
            write_group_bits: 3,
        };
        assert_eq!(p.max_ts(), 4095);
        assert_eq!(p.group_size(), 8);
        let huge = TsParams {
            ts_bits: 62,
            write_group_bits: 0,
        };
        assert!(huge.max_ts() > 1u64 << 61);
        assert_eq!(huge.group_size(), 1);
    }

    #[test]
    fn decay_units_scale_with_group_size() {
        assert_eq!(TsoCcConfig::realistic(12, 3).decay_ts_units(), Some(32));
        assert_eq!(TsoCcConfig::realistic(12, 0).decay_ts_units(), Some(256));
        assert_eq!(TsoCcConfig::basic().decay_ts_units(), None);
    }

    #[test]
    fn reset_frequency_relationships() {
        // TSO-CC-4-9-3 resets after the same number of *writes* as
        // TSO-CC-4-12-0 (2^9 groups * 2^3 writes = 2^12 writes), but 8x
        // more often than TSO-CC-4-12-3.
        let c930 = TsoCcConfig::realistic(9, 3);
        let c120 = TsoCcConfig::realistic(12, 0);
        let writes_930 = c930.write_ts.unwrap().max_ts() * c930.write_ts.unwrap().group_size();
        let writes_120 = c120.write_ts.unwrap().max_ts() * c120.write_ts.unwrap().group_size();
        assert_eq!(writes_930 + 7, writes_120); // off-by-group rounding
    }
}
