#![warn(missing_docs)]

//! The TSO-CC protocol — the paper's primary contribution.
//!
//! TSO-CC enforces TSO *lazily*, without a sharing vector (§3):
//!
//! - **No sharer tracking.** The L2 keeps only a log(n)-bit `b.owner`
//!   field: the owner for private lines, the last writer for shared
//!   lines, a coarse group vector for shared-read-only lines.
//! - **Write propagation** (§3.1): writes drain to the shared L2 in
//!   program order (one outstanding state change at a time). Reads of
//!   Shared lines hit locally only `2^Bmaxacc` times before being forced
//!   back to the L2, so a spinning acquire always (eventually) sees its
//!   release.
//! - **Self-invalidation** (§3.2): on an L1 miss response whose last
//!   writer is another core, all Shared lines are invalidated, ensuring
//!   `r → r` ordering past a potential acquire.
//! - **Transitive reduction** (§3.3): per-core write timestamps and
//!   last-seen tables skip self-invalidation when the write was provably
//!   already observed; write-grouping trades timestamp-space for
//!   precision.
//! - **Shared read-only lines** (§3.4): lines never written (or decayed
//!   after ~256 writes of inactivity) become SharedRO with L2-sourced
//!   timestamps; they hit without limit and survive sweeps; writes to
//!   them broadcast-invalidate a coarse sharer group vector.
//! - **Timestamp resets** (§3.5): finite timestamps wrap; resets
//!   broadcast, epoch-ids ride on data responses to catch races, and the
//!   L2 clamps stale-epoch timestamps to the smallest valid value.
//! - **Atomics and fences** (§3.6): RMWs issue GetX like stores; fences
//!   self-invalidate all Shared lines unconditionally.
//!
//! The ablation `CC-shared-to-L2` (§4.2) — no Shared caching at all —
//! is expressed as a [`TsoCcConfig`] with `max_acc = 0`.

mod config;
mod factory;
mod l1;
mod l2;
pub mod storage;

pub use config::{TsParams, TsoCcConfig};
pub use factory::TsoCcFactory;
pub use l1::{TsoCcL1, TsoCcL1Config, TsoCcL1Policy};
pub use l2::{TsoCcL2, TsoCcL2Config, TsoCcL2Policy};
pub use storage::StorageModel;

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests;
