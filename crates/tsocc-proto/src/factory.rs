//! The TSO-CC [`ProtocolFactory`]: how the paper's protocol registers
//! itself with the protocol-agnostic system assembly.

use tsocc_coherence::{
    CoherenceDiscipline, FaultState, L1Controller, L2Controller, MachineShape, ProtocolFactory,
};

use crate::{TsoCcConfig, TsoCcL1Config, TsoCcL2Config};

/// Builds TSO-CC L1/L2 controllers, in any §4.2 configuration, for any
/// machine shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TsoCcFactory {
    /// Protocol parameters (timestamp widths, access budget, …).
    pub proto: TsoCcConfig,
}

impl TsoCcFactory {
    /// A factory for one §4.2 configuration.
    pub fn new(proto: TsoCcConfig) -> Self {
        TsoCcFactory { proto }
    }
}

impl ProtocolFactory for TsoCcFactory {
    fn protocol_name(&self) -> String {
        self.proto.name()
    }

    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller> {
        let mut ctl = TsoCcL1Config {
            id: core,
            n_cores: shape.n_cores,
            n_tiles: shape.n_tiles,
            l2_banks: shape.l2_banks,
            params: shape.l1_params,
            issue_latency: shape.l1_issue_latency,
            proto: self.proto,
        }
        .build();
        ctl.chassis.faults = FaultState::for_l1(&shape.faults, core);
        Box::new(ctl)
    }

    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller> {
        let mut ctl = TsoCcL2Config {
            tile,
            n_cores: shape.n_cores,
            n_mem: shape.n_mem,
            params: shape.l2_params,
            latency: shape.l2_latency,
            proto: self.proto,
        }
        .build();
        ctl.chassis.faults = FaultState::for_l2(&shape.faults, tile);
        Box::new(ctl)
    }

    fn coherence_discipline(&self) -> CoherenceDiscipline {
        // Writers proceed while sharers keep bounded-stale copies; only
        // the one-writer-at-a-time half of SWMR applies (§3.1).
        CoherenceDiscipline::Lazy
    }
}

#[cfg(test)]
mod factory_tests {
    use super::*;
    use tsocc_coherence::MeshTopology;
    use tsocc_mem::CacheParams;

    #[test]
    fn builds_quiescent_controllers_with_config_name() {
        let f = TsoCcFactory::new(TsoCcConfig::basic());
        assert_eq!(f.protocol_name(), TsoCcConfig::basic().name());
        let shape = MachineShape {
            n_cores: 2,
            n_tiles: 2,
            n_mem: 1,
            mesh: MeshTopology::for_tiles(2),
            l2_banks: 1,
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
            faults: tsocc_coherence::FaultPlan::none(),
        };
        assert!(f.l1(1, &shape).is_quiescent());
        assert!(f.l2(0, &shape).is_quiescent());
    }
}
