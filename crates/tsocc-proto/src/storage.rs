//! Analytic coherence-storage model (paper §3.7, Table 1, Figure 2).
//!
//! Computes the extra on-chip storage each protocol needs for coherence
//! state, as a function of core count. MESI pays a full sharing vector
//! (n bits) per L2 line — linear in cores — while TSO-CC pays
//! `Bts + log2(n)` per L2 line and `Bmaxacc + Bts` per L1 line, plus
//! small per-node tables: logarithmic growth.
//!
//! The exact bit accounting of the paper's figures is not fully
//! specified; this model follows Table 1 literally. EXPERIMENTS.md
//! records our percentages next to the paper's (38%/82% reductions at
//! 32/128 cores for TSO-CC-4-12-3).

use crate::TsoCcConfig;

/// Machine shape for the storage model.
#[derive(Clone, Copy, Debug)]
pub struct StorageModel {
    /// Number of cores (and L2 tiles).
    pub n_cores: usize,
    /// L1 lines per core — I+D, so 1024 for 32KiB+32KiB (Table 2).
    pub l1_lines_per_core: usize,
    /// L2 lines per tile — 16384 for 1MiB tiles.
    pub l2_lines_per_tile: usize,
    /// Epoch-id width (3 in Figure 2).
    pub epoch_bits: u64,
    /// Access-counter width (`Bmaxacc`, 4).
    pub acc_bits: u64,
}

impl StorageModel {
    /// The paper's Figure 2 machine shape for `n` cores.
    pub fn paper(n_cores: usize) -> Self {
        StorageModel {
            n_cores,
            l1_lines_per_core: 1024,
            l2_lines_per_tile: 16384,
            epoch_bits: 3,
            acc_bits: 4,
        }
    }

    /// Bits in a core id (`log2(n)` rounded up, min 1).
    pub fn owner_bits(&self) -> u64 {
        (usize::BITS - (self.n_cores.max(2) - 1).leading_zeros()) as u64
    }

    /// Total MESI coherence storage in bits: a full n-bit sharing
    /// vector per L2 line.
    pub fn mesi_bits(&self) -> u64 {
        let per_line = self.n_cores as u64;
        per_line * self.l2_lines_per_tile as u64 * self.n_cores as u64
    }

    /// Total TSO-CC coherence storage in bits for a configuration,
    /// following Table 1.
    pub fn tsocc_bits(&self, cfg: &TsoCcConfig) -> u64 {
        let n = self.n_cores as u64;
        let tiles = n; // one tile per core
        let owner = self.owner_bits();
        let (ts_bits, wg_bits) = match cfg.write_ts {
            Some(p) => (p.ts_bits as u64, p.write_group_bits as u64),
            None => (0, 0),
        };
        let ep = if cfg.write_ts.is_some() || cfg.sro_ts {
            self.epoch_bits
        } else {
            0
        };
        let acc = if cfg.max_acc > 0 { self.acc_bits } else { 0 };

        // ---- L1, per node (Table 1) ----
        let mut l1_node = 0;
        if cfg.write_ts.is_some() {
            l1_node += ts_bits // current timestamp
                + wg_bits // write-group counter
                + ep // current epoch-id
                + n * ts_bits // ts_L1 table
                + n * ep; // epoch_ids_L1
        }
        if cfg.sro_ts {
            l1_node += tiles * ts_bits.max(1) // ts_L2 table
                + tiles * ep; // epoch_ids_L2
        }
        // ---- L1, per line ----
        let l1_line = acc + ts_bits;

        // ---- L2, per tile ----
        let mut l2_tile = 0;
        if cfg.write_ts.is_some() {
            l2_tile += n * ts_bits + n * ep; // ts_L1 + epoch_ids_L1
        }
        if cfg.sro_ts {
            l2_tile += ts_bits.max(1) + ep + 2; // tile ts + epoch + flags
        }
        // ---- L2, per line ----
        let l2_line = ts_bits + owner;

        n * (l1_node + self.l1_lines_per_core as u64 * l1_line)
            + tiles * (l2_tile + self.l2_lines_per_tile as u64 * l2_line)
    }

    /// Converts bits to megabytes.
    pub fn to_mb(bits: u64) -> f64 {
        bits as f64 / 8.0 / 1024.0 / 1024.0
    }

    /// Storage reduction of a TSO-CC configuration relative to MESI
    /// (e.g. `0.38` for a 38% reduction).
    pub fn reduction_vs_mesi(&self, cfg: &TsoCcConfig) -> f64 {
        1.0 - self.tsocc_bits(cfg) as f64 / self.mesi_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_grows_linearly_per_line() {
        let m32 = StorageModel::paper(32);
        let m128 = StorageModel::paper(128);
        // 4x cores => 4x lines * 4x vector = 16x storage.
        assert_eq!(m128.mesi_bits(), 16 * m32.mesi_bits());
    }

    #[test]
    fn tsocc_scales_logarithmically_per_line() {
        let cfg = TsoCcConfig::realistic(12, 3);
        let m32 = StorageModel::paper(32);
        let m128 = StorageModel::paper(128);
        let growth = m128.tsocc_bits(&cfg) as f64 / m32.tsocc_bits(&cfg) as f64;
        // Line count grows 4x; per-line bits only 17→19. Way below
        // MESI's 16x.
        assert!(growth < 6.0, "growth={growth}");
    }

    #[test]
    fn paper_reduction_shape() {
        let cfg = TsoCcConfig::realistic(12, 3);
        let r32 = StorageModel::paper(32).reduction_vs_mesi(&cfg);
        let r128 = StorageModel::paper(128).reduction_vs_mesi(&cfg);
        // Paper: 38% at 32 cores, 82% at 128 cores. Bit-accounting
        // details differ; the shape (large, increasing with cores) must
        // hold.
        assert!(r32 > 0.25, "r32={r32}");
        assert!(r128 > 0.75, "r128={r128}");
        assert!(r128 > r32);
    }

    #[test]
    fn basic_and_shared_to_l2_are_cheapest() {
        let m = StorageModel::paper(32);
        let basic = m.tsocc_bits(&TsoCcConfig::basic());
        let s2l2 = m.tsocc_bits(&TsoCcConfig::cc_shared_to_l2());
        let full = m.tsocc_bits(&TsoCcConfig::realistic(12, 3));
        assert!(s2l2 < basic);
        assert!(basic < full);
    }

    #[test]
    fn owner_bits() {
        assert_eq!(StorageModel::paper(32).owner_bits(), 5);
        assert_eq!(StorageModel::paper(128).owner_bits(), 7);
        assert_eq!(StorageModel::paper(2).owner_bits(), 1);
    }
}
