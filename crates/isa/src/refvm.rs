//! Sequential reference interpreter.
//!
//! Executes a single program against a flat word-addressed memory with
//! sequentially consistent semantics. Used as the oracle in differential
//! tests: a single-threaded program (or a properly synchronized one) must
//! produce the same final registers and memory on the full timing
//! simulator as it does here.

use std::collections::HashMap;

use crate::instr::Reg;
use crate::program::Program;
use crate::thread::{Effect, MemOp, ThreadState};

/// Why the reference interpreter stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefVmError {
    /// The program executed `fuel` instructions without halting.
    OutOfFuel,
}

impl std::fmt::Display for RefVmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefVmError::OutOfFuel => write!(f, "program did not halt within fuel"),
        }
    }
}

impl std::error::Error for RefVmError {}

/// Runs `program` to completion against `mem`, returning the final
/// register file.
///
/// `mem` maps 8-byte-aligned byte addresses to word values; absent
/// addresses read as zero. Random delays are ignored (they only matter
/// for timing).
///
/// # Errors
///
/// Returns [`RefVmError::OutOfFuel`] if the program does not halt within
/// `fuel` instruction steps.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use tsocc_isa::{Asm, Reg, refvm::run_ref};
///
/// let mut a = Asm::new();
/// a.movi(Reg::R1, 5);
/// a.store_abs(Reg::R1, 0x40);
/// a.load_abs(Reg::R2, 0x40);
/// a.halt();
/// let mut mem = HashMap::new();
/// let regs = run_ref(&a.finish(), &mut mem, 100).unwrap();
/// assert_eq!(regs[Reg::R2.index()], 5);
/// assert_eq!(mem[&0x40], 5);
/// ```
pub fn run_ref(
    program: &Program,
    mem: &mut HashMap<u64, u64>,
    fuel: u64,
) -> Result<[u64; Reg::COUNT], RefVmError> {
    let mut t = ThreadState::new();
    for _ in 0..fuel {
        match t.step(program) {
            Effect::Continue | Effect::Delay(_) | Effect::RandDelay(_) => {}
            Effect::Halted => {
                let mut regs = [0u64; Reg::COUNT];
                for (i, r) in regs.iter_mut().enumerate() {
                    *r = t.reg(Reg::from_index(i));
                }
                return Ok(regs);
            }
            Effect::Mem(op) => match op {
                MemOp::Load { addr } => {
                    let v = mem.get(&addr).copied().unwrap_or(0);
                    t.complete_load(v);
                }
                MemOp::Store { addr, value } => {
                    mem.insert(addr, value);
                }
                MemOp::Rmw { addr, op } => {
                    let old = mem.get(&addr).copied().unwrap_or(0);
                    mem.insert(addr, op.apply(old));
                    t.complete_load(old);
                }
                MemOp::Fence => {}
            },
        }
    }
    Err(RefVmError::OutOfFuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.jump(top);
        let err = run_ref(&a.finish(), &mut HashMap::new(), 100).unwrap_err();
        assert_eq!(err, RefVmError::OutOfFuel);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rmw_sequence() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 2);
        a.fetch_add(Reg::R2, Reg::R0, 0x40, Reg::R1); // mem=2, r2=0
        a.fetch_add(Reg::R3, Reg::R0, 0x40, Reg::R1); // mem=4, r3=2
        a.movi(Reg::R4, 77);
        a.swap(Reg::R5, Reg::R0, 0x40, Reg::R4); // mem=77, r5=4
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 100).unwrap();
        assert_eq!(regs[Reg::R2.index()], 0);
        assert_eq!(regs[Reg::R3.index()], 2);
        assert_eq!(regs[Reg::R5.index()], 4);
        assert_eq!(mem[&0x40], 77);
    }

    #[test]
    fn failed_cas_leaves_memory() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1); // expected (wrong)
        a.movi(Reg::R2, 9); // new
        a.cas(Reg::R3, Reg::R0, 0x80, Reg::R1, Reg::R2);
        a.halt();
        let mut mem = HashMap::new();
        mem.insert(0x80, 5);
        let regs = run_ref(&a.finish(), &mut mem, 100).unwrap();
        assert_eq!(regs[Reg::R3.index()], 5, "old value returned");
        assert_eq!(mem[&0x80], 5, "memory unchanged");
    }

    #[test]
    fn delays_are_functional_noops() {
        let mut a = Asm::new();
        a.delay(1000);
        a.rand_delay(1000);
        a.movi(Reg::R1, 3);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 100).unwrap();
        assert_eq!(regs[Reg::R1.index()], 3);
    }
}
