//! Assembled programs.

use std::fmt;

use crate::instr::Instr;

/// An immutable, fully label-resolved instruction sequence.
///
/// Produced by [`crate::Asm::finish`]; executed by
/// [`crate::ThreadState`] (timing-accurate, via the CPU model) or
/// [`crate::refvm::run_ref`] (functional reference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Wraps a raw instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if any branch or jump targets an out-of-range instruction
    /// index — such a program could never have been produced by the
    /// assembler.
    pub fn new(instrs: Vec<Instr>) -> Self {
        for (pc, i) in instrs.iter().enumerate() {
            let target = match i {
                Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    t <= instrs.len(),
                    "instruction {pc} targets {t}, past end {}",
                    instrs.len()
                );
            }
        }
        Program { instrs }
    }

    /// The instruction at `pc`, or `None` past the end (treated as an
    /// implicit halt by executors).
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:>4}: {i:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Reg};

    #[test]
    fn fetch_past_end_is_none() {
        let p = Program::new(vec![Instr::Halt]);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic]
    fn wild_branch_target_panics() {
        let _ = Program::new(vec![Instr::Branch {
            cond: Cond::Eq,
            ra: Reg::R0,
            rb: Reg::R0,
            target: 99,
        }]);
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new(vec![Instr::Fence, Instr::Halt]);
        let s = p.to_string();
        assert!(s.contains("Fence"));
        assert!(s.contains("Halt"));
    }
}
