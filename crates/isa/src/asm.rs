//! A small assembler with forward-reference label resolution.

use crate::instr::{AluOp, Cond, Instr, Reg};
use crate::program::Program;

/// A branch target; create with [`Asm::new_label`], place with
/// [`Asm::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder that assembles [`Program`]s, resolving labels in a final
/// patching pass so loops and forward branches read naturally.
///
/// Scratch convention used throughout the workloads: `R30` and `R31`
/// are reserved by the assembler's convenience macros (lock helpers,
/// etc.), `R0` is hardwired zero.
///
/// # Examples
///
/// A bounded spin loop:
///
/// ```
/// use tsocc_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// a.movi(Reg::R1, 3);
/// let top = a.new_label();
/// a.bind(top);
/// a.subi(Reg::R1, Reg::R1, 1);
/// a.bne_imm(Reg::R1, 0, top);
/// a.halt();
/// let p = a.finish();
/// let regs = tsocc_isa::refvm::run_ref(&p, &mut Default::default(), 1_000).unwrap();
/// assert_eq!(regs[Reg::R1.index()], 0);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs to patch at finish.
    patches: Vec<(usize, Label)>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current instruction index (where the next emitted instruction
    /// will land).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // ---- moves and ALU -------------------------------------------------

    /// `rd = imm`
    pub fn movi(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Movi { rd, imm })
    }

    /// `rd = rs` (encoded as `rd = rs + 0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Add,
            rd,
            ra: rs,
            imm: 0,
        })
    }

    /// `rd = op(ra, rb)`
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Alu { op, rd, ra, rb })
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, ra, rb)
    }

    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Add,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra - imm`
    pub fn subi(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Sub,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra * imm`
    pub fn muli(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Mul,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra & imm`
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::And,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra ^ imm`
    pub fn xori(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Xor,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra % imm` (imm 0 ⇒ identity).
    pub fn remi(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Rem,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra << imm`
    pub fn shli(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Shl,
            rd,
            ra,
            imm,
        })
    }

    /// `rd = ra >> imm` (logical)
    pub fn shri(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Alui {
            op: AluOp::Shr,
            rd,
            ra,
            imm,
        })
    }

    // ---- memory --------------------------------------------------------

    /// `rd = mem[base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: u64) -> &mut Self {
        self.push(Instr::Load { rd, base, offset })
    }

    /// `rd = mem[addr]` for a constant address (uses R0 as base).
    pub fn load_abs(&mut self, rd: Reg, addr: u64) -> &mut Self {
        self.push(Instr::Load {
            rd,
            base: Reg::R0,
            offset: addr,
        })
    }

    /// `mem[base + offset] = rs`
    pub fn store(&mut self, rs: Reg, base: Reg, offset: u64) -> &mut Self {
        self.push(Instr::Store { rs, base, offset })
    }

    /// `mem[addr] = rs` for a constant address.
    pub fn store_abs(&mut self, rs: Reg, addr: u64) -> &mut Self {
        self.push(Instr::Store {
            rs,
            base: Reg::R0,
            offset: addr,
        })
    }

    /// `rd = CAS(mem[base+offset], expected, new)`; rd gets the old value.
    pub fn cas(&mut self, rd: Reg, base: Reg, offset: u64, expected: Reg, new: Reg) -> &mut Self {
        self.push(Instr::Cas {
            rd,
            base,
            offset,
            expected,
            new,
        })
    }

    /// `rd = CAS(mem[addr], expected, new)` for a constant address.
    pub fn cas_abs(&mut self, rd: Reg, addr: u64, expected: Reg, new: Reg) -> &mut Self {
        self.cas(rd, Reg::R0, addr, expected, new)
    }

    /// `rd = fetch_add(mem[base+offset], rs)`
    pub fn fetch_add(&mut self, rd: Reg, base: Reg, offset: u64, rs: Reg) -> &mut Self {
        self.push(Instr::FetchAdd {
            rd,
            base,
            offset,
            rs,
        })
    }

    /// `rd = fetch_add(mem[addr], rs)` for a constant address.
    pub fn fetch_add_abs(&mut self, rd: Reg, addr: u64, rs: Reg) -> &mut Self {
        self.fetch_add(rd, Reg::R0, addr, rs)
    }

    /// `rd = swap(mem[base+offset], rs)`
    pub fn swap(&mut self, rd: Reg, base: Reg, offset: u64, rs: Reg) -> &mut Self {
        self.push(Instr::Swap {
            rd,
            base,
            offset,
            rs,
        })
    }

    /// `rd = swap(mem[addr], rs)` for a constant address.
    pub fn swap_abs(&mut self, rd: Reg, addr: u64, rs: Reg) -> &mut Self {
        self.swap(rd, Reg::R0, addr, rs)
    }

    /// Full fence (`mfence`).
    pub fn fence(&mut self) -> &mut Self {
        self.push(Instr::Fence)
    }

    // ---- control flow --------------------------------------------------

    /// Branch to `label` if `cond(ra, rb)`.
    pub fn branch(&mut self, cond: Cond, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label));
        self.push(Instr::Branch {
            cond,
            ra,
            rb,
            target: usize::MAX,
        })
    }

    /// Branch if `ra == rb`.
    pub fn beq(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Eq, ra, rb, label)
    }

    /// Branch if `ra != rb`.
    pub fn bne(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Ne, ra, rb, label)
    }

    /// Branch if `ra < rb` (unsigned).
    pub fn blt(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Lt, ra, rb, label)
    }

    /// Branch if `ra >= rb` (unsigned).
    pub fn bge(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Ge, ra, rb, label)
    }

    /// Branch if `ra == imm` (materializes imm into R30).
    pub fn beq_imm(&mut self, ra: Reg, imm: u64, label: Label) -> &mut Self {
        if imm == 0 {
            return self.beq(ra, Reg::R0, label);
        }
        self.movi(Reg::R30, imm);
        self.beq(ra, Reg::R30, label)
    }

    /// Branch if `ra != imm` (materializes imm into R30).
    pub fn bne_imm(&mut self, ra: Reg, imm: u64, label: Label) -> &mut Self {
        if imm == 0 {
            return self.bne(ra, Reg::R0, label);
        }
        self.movi(Reg::R30, imm);
        self.bne(ra, Reg::R30, label)
    }

    /// Branch if `ra < imm` (materializes imm into R30).
    pub fn blt_imm(&mut self, ra: Reg, imm: u64, label: Label) -> &mut Self {
        self.movi(Reg::R30, imm);
        self.blt(ra, Reg::R30, label)
    }

    /// Unconditional jump.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), label));
        self.push(Instr::Jump { target: usize::MAX })
    }

    /// Local compute for `cycles` cycles.
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        self.push(Instr::Delay { cycles })
    }

    /// Random delay in `[0, max]` cycles (litmus perturbation).
    pub fn rand_delay(&mut self, max: u32) -> &mut Self {
        self.push(Instr::RandDelay { max })
    }

    /// Stop the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        for (at, label) in &self.patches {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} used but never bound"));
            match &mut self.instrs[*at] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("patch site holds {other:?}"),
            }
        }
        Program::new(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refvm::run_ref;
    use std::collections::HashMap;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.movi(Reg::R1, 1);
        a.jump(skip);
        a.movi(Reg::R1, 99); // skipped
        a.bind(skip);
        a.halt();
        let p = a.finish();
        let regs = run_ref(&p, &mut HashMap::new(), 100).unwrap();
        assert_eq!(regs[Reg::R1.index()], 1);
    }

    #[test]
    fn counted_loop_executes_n_times() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 0);
        a.movi(Reg::R2, 10);
        let top = a.new_label();
        a.bind(top);
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt(Reg::R1, Reg::R2, top);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 1000).unwrap();
        assert_eq!(regs[Reg::R1.index()], 10);
    }

    #[test]
    #[should_panic]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jump(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn abs_rmw_helpers_through_reference_vm() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 3);
        a.fetch_add_abs(Reg::R2, 0x200, Reg::R1); // mem = 3, returns 0
        a.movi(Reg::R3, 3);
        a.movi(Reg::R4, 11);
        a.cas_abs(Reg::R5, 0x200, Reg::R3, Reg::R4); // succeeds, returns 3
        a.movi(Reg::R6, 5);
        a.swap_abs(Reg::R7, 0x200, Reg::R6); // mem = 5, returns 11
        a.load_abs(Reg::R8, 0x200);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 100).unwrap();
        assert_eq!(regs[Reg::R2.index()], 0);
        assert_eq!(regs[Reg::R5.index()], 3);
        assert_eq!(regs[Reg::R7.index()], 11);
        assert_eq!(regs[Reg::R8.index()], 5);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = Asm::new();
        a.movi(Reg::R0, 42); // ignored
        a.mov(Reg::R1, Reg::R0);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 100).unwrap();
        assert_eq!(regs[Reg::R1.index()], 0);
    }

    #[test]
    fn memory_ops_through_reference_vm() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 7);
        a.store_abs(Reg::R1, 0x100);
        a.load_abs(Reg::R2, 0x100);
        a.movi(Reg::R3, 7);
        a.movi(Reg::R4, 9);
        a.cas(Reg::R5, Reg::R0, 0x100, Reg::R3, Reg::R4); // succeeds
        a.load_abs(Reg::R6, 0x100);
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 100).unwrap();
        assert_eq!(regs[Reg::R2.index()], 7);
        assert_eq!(regs[Reg::R5.index()], 7, "CAS returns old value");
        assert_eq!(regs[Reg::R6.index()], 9);
    }
}
