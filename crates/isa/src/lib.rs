#![warn(missing_docs)]

//! The TVM: a tiny threaded register IR in which all simulated programs
//! are written.
//!
//! The paper evaluates TSO-CC by running x86-64 binaries (SPLASH-2,
//! PARSEC, STAMP and diy-generated litmus tests) on gem5 in full-system
//! mode. This reproduction cannot execute x86 binaries, so every workload
//! is instead expressed in a minimal RISC-like IR with *real control
//! flow*: spin loops, CAS retries and data-dependent branches execute
//! functionally through the simulated memory hierarchy. This preserves
//! the property that matters for coherence-protocol evaluation — the
//! memory-access and synchronization behaviour of the program reacts to
//! the values the protocol actually returns (including stale values,
//! which TSO-CC deliberately permits).
//!
//! Key types:
//!
//! - [`Reg`], [`Instr`], [`Program`] — the IR itself,
//! - [`Asm`] — a label-resolving assembler/builder,
//! - [`ThreadState`] + [`Effect`] — the stepping interface used by the
//!   timing CPU model in `tsocc-cpu`,
//! - [`refvm::run_ref`] — a sequential reference interpreter used as a
//!   test oracle.
//!
//! # Examples
//!
//! Spin on a flag, then read data (the consumer of the paper's Figure 1):
//!
//! ```
//! use tsocc_isa::{Asm, Reg};
//!
//! let data = 0x100u64;
//! let flag = 0x140u64;
//! let mut a = Asm::new();
//! let spin = a.new_label();
//! a.bind(spin);
//! a.load_abs(Reg::R1, flag);      // r1 = *flag
//! a.beq_imm(Reg::R1, 0, spin);    // while (flag == 0) retry
//! a.load_abs(Reg::R2, data);      // r2 = *data
//! a.halt();
//! let program = a.finish();
//! assert!(program.len() >= 4);
//! ```

pub mod asm;
pub mod instr;
pub mod program;
pub mod refvm;
pub mod thread;

pub use asm::{Asm, Label};
pub use instr::{AluOp, Cond, Instr, Reg, RmwOp};
pub use program::Program;
pub use thread::{Effect, MemOp, ThreadState};

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
