//! Instruction set definition.

use std::fmt;

/// A general-purpose 64-bit register.
///
/// `R0` is hardwired to zero, RISC style: reads return 0, writes are
/// ignored. `R1..=R31` are ordinary registers.
///
/// # Examples
///
/// ```
/// use tsocc_isa::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::from_index(3), Reg::R3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the 32 registers are self-describing
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Dense index of the register (0..32).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Register from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn from_index(i: usize) -> Reg {
        const ALL: [Reg; 32] = [
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
            Reg::R14,
            Reg::R15,
            Reg::R16,
            Reg::R17,
            Reg::R18,
            Reg::R19,
            Reg::R20,
            Reg::R21,
            Reg::R22,
            Reg::R23,
            Reg::R24,
            Reg::R25,
            Reg::R26,
            Reg::R27,
            Reg::R28,
            Reg::R29,
            Reg::R30,
            Reg::R31,
        ];
        ALL[i]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Arithmetic / logic operations (all 64-bit, wrapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (by low 6 bits of rhs).
    Shl,
    /// Logical shift right (by low 6 bits of rhs).
    Shr,
    /// Unsigned remainder; x % 0 = x (total function, keeps the VM
    /// panic-free on arbitrary programs).
    Rem,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// Branch conditions (unsigned comparisons).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// a == b
    Eq,
    /// a != b
    Ne,
    /// a < b (unsigned)
    Lt,
    /// a >= b (unsigned)
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn holds(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// Atomic read-modify-write operations, with operands already resolved
/// to values at issue time.
///
/// These correspond to x86 `lock cmpxchg`, `lock xadd` and `xchg` — the
/// primitives the paper's §3.6 covers ("atomic accesses and fences").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RmwOp {
    /// Compare-and-swap: if mem == expected, mem = new. Old value is
    /// always returned.
    Cas {
        /// Value the memory word must hold for the swap to happen.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// mem += operand; returns the old value.
    FetchAdd {
        /// Addend.
        operand: u64,
    },
    /// mem = operand; returns the old value.
    Swap {
        /// Replacement value.
        operand: u64,
    },
}

impl RmwOp {
    /// Applies the RMW to `old`, returning the new memory value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::Cas { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
            RmwOp::FetchAdd { operand } => old.wrapping_add(operand),
            RmwOp::Swap { operand } => operand,
        }
    }
}

/// One TVM instruction.
///
/// Memory operands are formed as `regs[base] + offset` and must be
/// 8-byte aligned when executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // operand fields follow the standard rd/ra/rs naming
pub enum Instr {
    /// `rd = imm`
    Movi { rd: Reg, imm: u64 },
    /// `rd = op(ra, rb)`
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// `rd = op(ra, imm)`
    Alui {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        imm: u64,
    },
    /// `rd = mem[ra + offset]`
    Load { rd: Reg, base: Reg, offset: u64 },
    /// `mem[ra + offset] = rs`
    Store { rs: Reg, base: Reg, offset: u64 },
    /// Atomic RMW on `mem[base + offset]`; `rd` receives the old value.
    /// `expected`/`operand` come from registers at issue time.
    Cas {
        rd: Reg,
        base: Reg,
        offset: u64,
        expected: Reg,
        new: Reg,
    },
    /// `rd = fetch_add(mem[base+offset], rs)`
    FetchAdd {
        rd: Reg,
        base: Reg,
        offset: u64,
        rs: Reg,
    },
    /// `rd = swap(mem[base+offset], rs)`
    Swap {
        rd: Reg,
        base: Reg,
        offset: u64,
        rs: Reg,
    },
    /// Full memory fence (x86 `mfence`).
    Fence,
    /// Conditional branch to absolute instruction index.
    Branch {
        cond: Cond,
        ra: Reg,
        rb: Reg,
        target: usize,
    },
    /// Unconditional jump to absolute instruction index.
    Jump { target: usize },
    /// Stall the thread for `cycles` cycles (models local compute).
    Delay { cycles: u32 },
    /// Stall for a uniformly random number of cycles in `[0, max]`;
    /// used to perturb litmus-test timing.
    RandDelay { max: u32 },
    /// Stop the thread.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 4), 12);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Rem.apply(17, 5), 2);
        assert_eq!(AluOp::Rem.apply(17, 0), 17, "total function");
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
        assert_eq!(AluOp::Shr.apply(2, 65), 1);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.holds(3, 3));
        assert!(Cond::Ne.holds(3, 4));
        assert!(Cond::Lt.holds(3, 4));
        assert!(Cond::Ge.holds(4, 4));
        assert!(!Cond::Lt.holds(4, 3));
    }

    #[test]
    fn rmw_semantics() {
        assert_eq!(
            RmwOp::Cas {
                expected: 0,
                new: 1
            }
            .apply(0),
            1
        );
        assert_eq!(
            RmwOp::Cas {
                expected: 0,
                new: 1
            }
            .apply(7),
            7
        );
        assert_eq!(RmwOp::FetchAdd { operand: 5 }.apply(10), 15);
        assert_eq!(RmwOp::Swap { operand: 9 }.apply(1), 9);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R17.to_string(), "r17");
    }
}
