//! Thread execution state and the CPU-facing stepping interface.

use crate::instr::{Instr, Reg, RmwOp};
use crate::program::Program;

/// A memory operation surfaced to the timing CPU model.
///
/// Addresses are byte addresses and must be 8-byte aligned; the
/// originating [`ThreadState::step`] validates this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Read one 64-bit word; complete with
    /// [`ThreadState::complete_load`].
    Load {
        /// Byte address of the word.
        addr: u64,
    },
    /// Write one 64-bit word.
    Store {
        /// Byte address of the word.
        addr: u64,
        /// Value to write.
        value: u64,
    },
    /// Atomic read-modify-write; complete with
    /// [`ThreadState::complete_load`] (the old value).
    Rmw {
        /// Byte address of the word.
        addr: u64,
        /// The operation, with operands resolved.
        op: RmwOp,
    },
    /// Full fence: order all prior memory operations before all later
    /// ones (drains the write buffer; self-invalidates under TSO-CC).
    Fence,
}

impl MemOp {
    /// The address the operation touches, if any.
    pub fn addr(&self) -> Option<u64> {
        match self {
            MemOp::Load { addr } | MemOp::Store { addr, .. } | MemOp::Rmw { addr, .. } => {
                Some(*addr)
            }
            MemOp::Fence => None,
        }
    }
}

/// What happened when a thread stepped one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// An internal (register-only) instruction executed; charge one
    /// cycle and step again.
    Continue,
    /// The thread issued a memory operation; the CPU must perform it.
    /// For `Load`/`Rmw` the thread is blocked until
    /// [`ThreadState::complete_load`] is called.
    Mem(MemOp),
    /// The thread computes locally for this many cycles.
    Delay(u32),
    /// The thread wants a random delay of up to this many cycles; the
    /// CPU draws from its own deterministic PRNG.
    RandDelay(u32),
    /// The thread has halted (explicitly or by running off the end).
    Halted,
}

/// Architectural state of one software thread.
///
/// The stepping protocol: call [`ThreadState::step`]; if it returns
/// [`Effect::Mem`] with a `Load` or `Rmw`, the thread is *blocked* —
/// perform the access and call [`ThreadState::complete_load`] with the
/// loaded (old) value before stepping again. Stores and fences complete
/// immediately from the thread's point of view (the CPU models write
/// buffering and drain).
///
/// # Examples
///
/// ```
/// use tsocc_isa::{Asm, Effect, MemOp, Reg, ThreadState};
///
/// let mut a = Asm::new();
/// a.load_abs(Reg::R1, 0x40);
/// a.halt();
/// let p = a.finish();
///
/// let mut t = ThreadState::new();
/// match t.step(&p) {
///     Effect::Mem(MemOp::Load { addr }) => {
///         assert_eq!(addr, 0x40);
///         t.complete_load(1234);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// assert_eq!(t.reg(Reg::R1), 1234);
/// assert_eq!(t.step(&p), Effect::Halted);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadState {
    regs: [u64; Reg::COUNT],
    pc: usize,
    halted: bool,
    /// Destination register of an in-flight load/RMW.
    pending_rd: Option<Reg>,
}

impl Default for ThreadState {
    fn default() -> Self {
        ThreadState::new()
    }
}

impl ThreadState {
    /// A fresh thread at pc 0 with all registers zero.
    pub fn new() -> Self {
        ThreadState {
            regs: [0; Reg::COUNT],
            pc: 0,
            halted: false,
            pending_rd: None,
        }
    }

    /// Reads a register (R0 reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r == Reg::R0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to R0 are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if r != Reg::R0 {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the thread has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the thread is blocked on an outstanding load/RMW.
    pub fn is_blocked(&self) -> bool {
        self.pending_rd.is_some()
    }

    /// Delivers the value of the outstanding load/RMW and unblocks.
    ///
    /// # Panics
    ///
    /// Panics if no load/RMW is outstanding.
    pub fn complete_load(&mut self, value: u64) {
        let rd = self
            .pending_rd
            .take()
            .expect("complete_load without an outstanding load");
        self.set_reg(rd, value);
    }

    /// Executes the instruction at the current pc.
    ///
    /// # Panics
    ///
    /// Panics if called while blocked on a load, or if a memory operand
    /// is not 8-byte aligned (a program bug).
    pub fn step(&mut self, program: &Program) -> Effect {
        assert!(
            self.pending_rd.is_none(),
            "step while blocked on a load at pc {}",
            self.pc
        );
        if self.halted {
            return Effect::Halted;
        }
        let Some(&instr) = program.fetch(self.pc) else {
            self.halted = true;
            return Effect::Halted;
        };
        match instr {
            Instr::Movi { rd, imm } => {
                self.set_reg(rd, imm);
                self.pc += 1;
                Effect::Continue
            }
            Instr::Alu { op, rd, ra, rb } => {
                let v = op.apply(self.reg(ra), self.reg(rb));
                self.set_reg(rd, v);
                self.pc += 1;
                Effect::Continue
            }
            Instr::Alui { op, rd, ra, imm } => {
                let v = op.apply(self.reg(ra), imm);
                self.set_reg(rd, v);
                self.pc += 1;
                Effect::Continue
            }
            Instr::Load { rd, base, offset } => {
                let addr = self.mem_addr(base, offset);
                self.pending_rd = Some(rd);
                self.pc += 1;
                Effect::Mem(MemOp::Load { addr })
            }
            Instr::Store { rs, base, offset } => {
                let addr = self.mem_addr(base, offset);
                let value = self.reg(rs);
                self.pc += 1;
                Effect::Mem(MemOp::Store { addr, value })
            }
            Instr::Cas {
                rd,
                base,
                offset,
                expected,
                new,
            } => {
                let addr = self.mem_addr(base, offset);
                let op = RmwOp::Cas {
                    expected: self.reg(expected),
                    new: self.reg(new),
                };
                self.pending_rd = Some(rd);
                self.pc += 1;
                Effect::Mem(MemOp::Rmw { addr, op })
            }
            Instr::FetchAdd {
                rd,
                base,
                offset,
                rs,
            } => {
                let addr = self.mem_addr(base, offset);
                let op = RmwOp::FetchAdd {
                    operand: self.reg(rs),
                };
                self.pending_rd = Some(rd);
                self.pc += 1;
                Effect::Mem(MemOp::Rmw { addr, op })
            }
            Instr::Swap {
                rd,
                base,
                offset,
                rs,
            } => {
                let addr = self.mem_addr(base, offset);
                let op = RmwOp::Swap {
                    operand: self.reg(rs),
                };
                self.pending_rd = Some(rd);
                self.pc += 1;
                Effect::Mem(MemOp::Rmw { addr, op })
            }
            Instr::Fence => {
                self.pc += 1;
                Effect::Mem(MemOp::Fence)
            }
            Instr::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.holds(self.reg(ra), self.reg(rb)) {
                    self.pc = target;
                } else {
                    self.pc += 1;
                }
                Effect::Continue
            }
            Instr::Jump { target } => {
                self.pc = target;
                Effect::Continue
            }
            Instr::Delay { cycles } => {
                self.pc += 1;
                Effect::Delay(cycles)
            }
            Instr::RandDelay { max } => {
                self.pc += 1;
                Effect::RandDelay(max)
            }
            Instr::Halt => {
                self.halted = true;
                Effect::Halted
            }
        }
    }

    fn mem_addr(&self, base: Reg, offset: u64) -> u64 {
        let addr = self.reg(base).wrapping_add(offset);
        assert!(
            addr.is_multiple_of(8),
            "unaligned memory operand 0x{addr:x} at pc {}",
            self.pc
        );
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn store_surfaces_value() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 55);
        a.store_abs(Reg::R1, 0x80);
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        assert_eq!(t.step(&p), Effect::Continue);
        match t.step(&p) {
            Effect::Mem(MemOp::Store { addr, value }) => {
                assert_eq!(addr, 0x80);
                assert_eq!(value, 55);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!t.is_blocked(), "stores do not block the thread");
    }

    #[test]
    fn rmw_blocks_until_completed() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1);
        a.fetch_add(Reg::R2, Reg::R0, 0x40, Reg::R1);
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        t.step(&p);
        match t.step(&p) {
            Effect::Mem(MemOp::Rmw { addr, op }) => {
                assert_eq!(addr, 0x40);
                assert_eq!(op, RmwOp::FetchAdd { operand: 1 });
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.is_blocked());
        t.complete_load(10);
        assert_eq!(t.reg(Reg::R2), 10);
        assert!(!t.is_blocked());
    }

    #[test]
    #[should_panic]
    fn step_while_blocked_panics() {
        let mut a = Asm::new();
        a.load_abs(Reg::R1, 0x40);
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        t.step(&p);
        t.step(&p); // blocked: must panic
    }

    #[test]
    #[should_panic]
    fn unaligned_access_panics() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 0x41);
        a.load(Reg::R2, Reg::R1, 0);
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        t.step(&p);
        t.step(&p);
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1);
        let p = a.finish();
        let mut t = ThreadState::new();
        assert_eq!(t.step(&p), Effect::Continue);
        assert_eq!(t.step(&p), Effect::Halted);
        assert!(t.is_halted());
        assert_eq!(t.step(&p), Effect::Halted, "halt is sticky");
    }

    #[test]
    fn delay_and_rand_delay_surface() {
        let mut a = Asm::new();
        a.delay(17);
        a.rand_delay(9);
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        assert_eq!(t.step(&p), Effect::Delay(17));
        assert_eq!(t.step(&p), Effect::RandDelay(9));
    }

    #[test]
    fn fence_surfaces_as_memop() {
        let mut a = Asm::new();
        a.fence();
        a.halt();
        let p = a.finish();
        let mut t = ThreadState::new();
        assert_eq!(t.step(&p), Effect::Mem(MemOp::Fence));
        assert_eq!(MemOp::Fence.addr(), None);
    }
}
