//! Property tests for the TVM: assembler/label correctness and
//! reference-interpreter arithmetic identities.

use std::collections::HashMap;

use proptest::prelude::*;
use tsocc_isa::{refvm::run_ref, AluOp, Asm, Instr, Program, Reg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A program that jumps over `skipped` poison instructions must
    /// never execute them, regardless of how many there are.
    #[test]
    fn jumps_skip_exactly_the_poisoned_region(skipped in 0usize..40) {
        let mut a = Asm::new();
        let out = a.new_label();
        a.jump(out);
        for _ in 0..skipped {
            a.movi(Reg::R1, 666);
        }
        a.bind(out);
        a.movi(Reg::R2, 1);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 10_000).unwrap();
        prop_assert_eq!(regs[Reg::R1.index()], 0, "poison executed");
        prop_assert_eq!(regs[Reg::R2.index()], 1);
    }

    /// Counted loops execute exactly n iterations for arbitrary n.
    #[test]
    fn counted_loops_are_exact(n in 1u64..500) {
        let mut a = Asm::new();
        a.movi(Reg::R1, 0);
        let top = a.new_label();
        a.bind(top);
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt_imm(Reg::R1, n, top);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 10 * n + 100).unwrap();
        prop_assert_eq!(regs[Reg::R1.index()], n);
    }

    /// ALU ops computed by the VM equal direct evaluation.
    #[test]
    fn alu_matches_direct_evaluation(x in any::<u64>(), y in any::<u64>()) {
        for op in [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::And,
            AluOp::Or, AluOp::Xor, AluOp::Shl, AluOp::Shr, AluOp::Rem,
        ] {
            let mut a = Asm::new();
            a.movi(Reg::R1, x);
            a.movi(Reg::R2, y);
            a.alu(op, Reg::R3, Reg::R1, Reg::R2);
            a.halt();
            let regs = run_ref(&a.finish(), &mut HashMap::new(), 100).unwrap();
            prop_assert_eq!(regs[Reg::R3.index()], op.apply(x, y), "{:?}", op);
        }
    }

    /// Store-then-load round-trips through memory for any address slot
    /// and value.
    #[test]
    fn memory_roundtrip(slot in 0u64..1000, value in any::<u64>()) {
        let addr = 0x1_0000 + slot * 8;
        let mut a = Asm::new();
        a.movi(Reg::R1, value);
        a.store_abs(Reg::R1, addr);
        a.load_abs(Reg::R2, addr);
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 100).unwrap();
        prop_assert_eq!(regs[Reg::R2.index()], value);
        prop_assert_eq!(mem[&addr], value);
    }

    /// fetch_add chains sum correctly for arbitrary operand sequences.
    #[test]
    fn fetch_add_chain_sums(addends in proptest::collection::vec(0u64..1_000_000, 1..30)) {
        let mut a = Asm::new();
        for &v in &addends {
            a.movi(Reg::R1, v);
            a.fetch_add(Reg::R2, Reg::R0, 0x40, Reg::R1);
        }
        a.load_abs(Reg::R3, 0x40);
        a.halt();
        let regs = run_ref(&a.finish(), &mut HashMap::new(), 10_000).unwrap();
        let total: u64 = addends.iter().sum();
        prop_assert_eq!(regs[Reg::R3.index()], total);
        // The last fetch_add returned the sum minus the last addend.
        prop_assert_eq!(regs[Reg::R2.index()], total - addends.last().unwrap());
    }
}

#[test]
fn program_rejects_dangling_branch_targets() {
    let result =
        std::panic::catch_unwind(|| Program::new(vec![Instr::Jump { target: 5 }, Instr::Halt]));
    assert!(result.is_err(), "target past end+1 must be rejected");
}
