//! Workloads for the TSO-CC evaluation: the paper's Table 3 benchmark
//! suite (reproduced as synthetic kernels), a synchronization library, a
//! NOrec-style software transactional memory, and the diy-style litmus
//! suite used for §4.3's verification.
//!
//! Every workload is expressed in TVM IR and executes *functionally*
//! through the simulated memory hierarchy: spin loops really spin on
//! cached flags, CAS retries really retry, and stale reads (which
//! TSO-CC deliberately permits) really return stale values.
//!
//! Substitution note (DESIGN.md §2/§3): the paper runs the real
//! SPLASH-2/PARSEC/STAMP binaries in gem5 full-system mode. Each kernel
//! here reproduces the *sharing pattern* the paper reports for its
//! benchmark — private-compute ratio, shared read-only footprint,
//! producer-consumer/migratory/false sharing, lock vs. transactional
//! synchronization — at a parameterized scale.
//!
//! # Examples
//!
//! ```
//! use tsocc::SystemConfig;
//! use tsocc_protocols::Protocol;
//! use tsocc_workloads::{Benchmark, Scale, run_workload};
//!
//! let w = Benchmark::Fft.build(4, Scale::Tiny, 7);
//! let cfg = SystemConfig::builder()
//!     .small()
//!     .cores(4)
//!     .protocol(Protocol::Mesi)
//!     .build()
//!     .expect("valid config");
//! let stats = run_workload(&w, cfg).unwrap();
//! assert!(stats.cycles > 0);
//! ```

pub mod kernels;
pub mod layout;
pub mod litmus;
pub mod runner;
pub mod stm;
pub mod sync;
pub mod tso_model;

pub use kernels::{Benchmark, Scale, Workload};
pub use litmus::{
    litmus_suite, run_litmus, run_litmus_faulted, FaultVerdict, LitmusReport, LitmusTest,
};
pub use runner::run_workload;

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
