//! Address-space layout for workloads.

use tsocc_mem::{Addr, LINE_BYTES};

/// A bump allocator handing out line-aligned regions of the simulated
/// address space, so kernels never alias each other's data structures
/// by accident.
///
/// # Examples
///
/// ```
/// use tsocc_workloads::layout::Layout;
///
/// let mut l = Layout::new();
/// let a = l.line();
/// let b = l.lines(4);
/// assert_eq!(a % 64, 0);
/// assert_ne!(a, b);
/// assert_eq!(l.word_of(b, 9), b + 72);
/// ```
#[derive(Clone, Debug)]
pub struct Layout {
    next: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

impl Layout {
    /// Starts allocating at a fixed base (above the null page).
    pub fn new() -> Self {
        Layout { next: 0x1_0000 }
    }

    /// Allocates one 64-byte line; returns its base byte address.
    pub fn line(&mut self) -> u64 {
        self.lines(1)
    }

    /// Allocates `n` contiguous lines; returns the base byte address.
    pub fn lines(&mut self, n: u64) -> u64 {
        let base = self.next;
        self.next += n * LINE_BYTES;
        base
    }

    /// Allocates space for `n` 64-bit words, rounded up to whole lines.
    pub fn words(&mut self, n: u64) -> u64 {
        self.lines(n.div_ceil(8))
    }

    /// Allocates `n` words, each on its *own* line (padding between
    /// values — the standard false-sharing fix).
    pub fn padded_words(&mut self, n: u64) -> u64 {
        self.lines(n)
    }

    /// Byte address of word `i` in a region starting at `base`.
    pub fn word_of(&self, base: u64, i: u64) -> u64 {
        base + i * 8
    }

    /// Byte address of the word at the start of line `i` in a
    /// line-per-element region.
    pub fn padded_word_of(&self, base: u64, i: u64) -> u64 {
        base + i * LINE_BYTES
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - 0x1_0000
    }

    /// Helper converting to [`Addr`].
    pub fn addr(raw: u64) -> Addr {
        Addr::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut l = Layout::new();
        let a = l.lines(2);
        let b = l.line();
        let c = l.words(9); // rounds to 2 lines
        let d = l.line();
        assert_eq!(a % 64, 0);
        assert_eq!(b, a + 128);
        assert_eq!(c, b + 64);
        assert_eq!(d, c + 128);
        assert_eq!(l.allocated(), 6 * 64);
    }

    #[test]
    fn padded_words_take_a_line_each() {
        let mut l = Layout::new();
        let base = l.padded_words(3);
        assert_eq!(l.padded_word_of(base, 0), base);
        assert_eq!(l.padded_word_of(base, 2), base + 128);
        assert_eq!(l.allocated(), 3 * 64);
    }
}
