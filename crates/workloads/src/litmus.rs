//! TSO litmus tests (the paper's §4.3 verification methodology).
//!
//! The paper generates litmus tests with diy and runs them in gem5 to
//! check that every TSO-CC configuration satisfies TSO. We implement
//! the standard x86-TSO litmus shapes (Sewell et al., CACM 2010 — the
//! same formalization diy draws from) directly in TVM IR and run each
//! many times under randomized timing perturbation, checking that
//! *forbidden* outcomes never occur and recording which *allowed*
//! outcomes were actually observed (relaxed outcomes appearing is
//! evidence the write buffer really reorders).

use std::collections::BTreeMap;

use tsocc::{FaultPlan, HangReport, System, SystemConfig};
use tsocc_coherence::ProtocolHandle;
use tsocc_isa::{Asm, Program, Reg};

/// The register each observed value is read from, per thread.
const OBS: [Reg; 4] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4];

/// A litmus test: programs, an outcome extractor, and the TSO verdict
/// for each outcome.
pub struct LitmusTest {
    /// Test name in the usual litmus nomenclature (SB, MP, ...).
    pub name: &'static str,
    /// One program per thread; observed registers are `R1..R4`.
    pub programs: Vec<Program>,
    /// How many registers each thread exposes as its outcome.
    pub observed: Vec<usize>,
    /// Returns `true` if the outcome (concatenated observed registers,
    /// thread-major) is forbidden under TSO.
    pub forbidden: fn(&[u64]) -> bool,
    /// An outcome that TSO *allows* but SC forbids, if the test has
    /// one (used to confirm the relaxation is actually exercised).
    pub relaxed_witness: Option<fn(&[u64]) -> bool>,
}

/// Results of running one litmus test many times.
#[derive(Clone, Debug, Default)]
pub struct LitmusReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Forbidden outcomes observed (must be zero).
    pub forbidden_count: u64,
    /// Whether the TSO-allowed/SC-forbidden witness outcome appeared.
    pub relaxed_seen: bool,
    /// Histogram of outcomes (outcome vector → count).
    pub outcomes: BTreeMap<Vec<u64>, u64>,
}

impl LitmusReport {
    /// Whether the run satisfied TSO.
    pub fn passed(&self) -> bool {
        self.forbidden_count == 0
    }
}

// Test addresses: distinct cache lines, away from zero.
const X: u64 = 0x2000;
const Y: u64 = 0x2040;

fn asm_with_jitter() -> Asm {
    let mut a = Asm::new();
    a.rand_delay(60);
    a
}

/// Warm-up prologue: pull both test lines into the local cache before
/// the timed window, so the relaxed window (loads hitting locally while
/// stores drain) is actually exercised — cold caches would hide the
/// store-buffer reordering behind miss latency.
fn asm_warmed() -> Asm {
    let mut a = Asm::new();
    a.load_abs(Reg::R11, X);
    a.load_abs(Reg::R12, Y);
    a.rand_delay(60);
    a
}

/// SB (store buffering): `st x=1; ld y || st y=1; ld x`.
/// `r1=0 ∧ r2=0` is **allowed** under TSO (the write buffer defers the
/// stores) and forbidden under SC — it is the relaxed witness.
fn sb() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.load_abs(Reg::R1, Y);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, Y);
    t1.load_abs(Reg::R1, X);
    t1.halt();
    LitmusTest {
        name: "SB",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 1],
        forbidden: |_| false,
        relaxed_witness: Some(|o| o == [0, 0]),
    }
}

/// SB+mfences: with fences between store and load, `0,0` is forbidden.
fn sb_fence() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.fence();
    t0.load_abs(Reg::R1, Y);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, Y);
    t1.fence();
    t1.load_abs(Reg::R1, X);
    t1.halt();
    LitmusTest {
        name: "SB+mfences",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 1],
        forbidden: |o| o == [0, 0],
        relaxed_witness: None,
    }
}

/// MP (message passing): `st x=1; st y=1 || ld y; ld x`.
/// `r1=1 ∧ r2=0` forbidden (w→w and r→r are both enforced).
fn mp() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.load_abs(Reg::R1, Y);
    t1.load_abs(Reg::R2, X);
    t1.halt();
    LitmusTest {
        name: "MP",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o == [1, 0],
        relaxed_witness: None,
    }
}

/// LB (load buffering): `ld x; st y=1 || ld y; st x=1`.
/// `r1=1 ∧ r2=1` forbidden (r→w enforced).
fn lb() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.load_abs(Reg::R1, X);
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.load_abs(Reg::R1, Y);
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, X);
    t1.halt();
    LitmusTest {
        name: "LB",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 1],
        forbidden: |o| o == [1, 1],
        relaxed_witness: None,
    }
}

/// S: `st x=2; st y=1 || ld y; st x=1`. Forbidden: `r1=1 ∧ x=2` — we
/// observe x via a final load on thread 1 after its store (same
/// location, program order, so the load sees at least its own store;
/// seeing 2 afterwards would violate coherence). Simplified check:
/// thread 1 reads x after storing 1; must not read 2 if r1=1 and its
/// own store was last. We check the classic register-only variant:
/// forbidden r1=1 ∧ r2=2 where r2 = ld x after st x=1.
fn s_test() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 2);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.load_abs(Reg::R1, Y);
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, X);
    t1.load_abs(Reg::R2, X);
    t1.halt();
    LitmusTest {
        name: "S",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        // After storing x=1, thread 1's load of x must see its own
        // store (forwarding/coherence), never the older x=2.
        forbidden: |o| o[1] == 2,
        relaxed_witness: None,
    }
}

/// IRIW (independent reads of independent writes): writers to x and y;
/// two readers must not disagree on the order of the writes (TSO's
/// total store order forbids `1,0,1,0`).
fn iriw() -> LitmusTest {
    let mut w0 = asm_with_jitter();
    w0.movi(Reg::R10, 1);
    w0.store_abs(Reg::R10, X);
    w0.halt();
    let mut w1 = asm_with_jitter();
    w1.movi(Reg::R10, 1);
    w1.store_abs(Reg::R10, Y);
    w1.halt();
    let mut r0 = asm_with_jitter();
    r0.load_abs(Reg::R1, X);
    r0.load_abs(Reg::R2, Y);
    r0.halt();
    let mut r1 = asm_with_jitter();
    r1.load_abs(Reg::R1, Y);
    r1.load_abs(Reg::R2, X);
    r1.halt();
    LitmusTest {
        name: "IRIW",
        programs: vec![w0.finish(), w1.finish(), r0.finish(), r1.finish()],
        observed: vec![0, 0, 2, 2],
        forbidden: |o| o == [1, 0, 1, 0],
        relaxed_witness: None,
    }
}

/// WRC (write-to-read causality): t0 writes x; t1 reads x then writes
/// y; t2 reads y then x. Forbidden: `r1(t1)=1 ∧ r1(t2)=1 ∧ r2(t2)=0`.
fn wrc() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.load_abs(Reg::R1, X);
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, Y);
    t1.halt();
    let mut t2 = asm_with_jitter();
    t2.load_abs(Reg::R1, Y);
    t2.load_abs(Reg::R2, X);
    t2.halt();
    LitmusTest {
        name: "WRC",
        programs: vec![t0.finish(), t1.finish(), t2.finish()],
        observed: vec![0, 1, 2],
        forbidden: |o| o == [1, 1, 0],
        relaxed_witness: None,
    }
}

/// CoRR: two reads of the same location by one thread must not go
/// backwards in coherence order while another thread writes 1 then 2.
fn corr() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 2);
    t0.store_abs(Reg::R10, X);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.load_abs(Reg::R1, X);
    t1.load_abs(Reg::R2, X);
    t1.halt();
    LitmusTest {
        name: "CoRR",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o[0] == 2 && o[1] == 1, // newer then older
        relaxed_witness: None,
    }
}

/// CoWW+CoWR: a thread's own writes to one location are observed in
/// order by itself.
fn cowr() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 2);
    t0.store_abs(Reg::R10, X);
    t0.load_abs(Reg::R1, X);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.movi(Reg::R10, 3);
    t1.store_abs(Reg::R10, X);
    t1.halt();
    LitmusTest {
        name: "CoWR",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 0],
        // Thread 0 must read 2 (its own latest) or 3 (t1's write after
        // ours in coherence order); never the overwritten 1 or 0.
        forbidden: |o| o[0] == 1 || o[0] == 0,
        relaxed_witness: None,
    }
}

/// RMW-SB: locked operations act as fences — SB with `xchg` used for
/// the stores forbids the `0,0` outcome.
fn rmw_sb() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.swap(Reg::R11, Reg::R0, X, Reg::R10);
    t0.load_abs(Reg::R1, Y);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.movi(Reg::R10, 1);
    t1.swap(Reg::R11, Reg::R0, Y, Reg::R10);
    t1.load_abs(Reg::R1, X);
    t1.halt();
    LitmusTest {
        name: "SB+rmws",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 1],
        forbidden: |o| o == [0, 0],
        relaxed_witness: None,
    }
}

/// MP with the flag and data on the *same* cache line (stresses the
/// single-line staleness rules).
fn mp_same_line() -> LitmusTest {
    const D: u64 = 0x2080;
    const F: u64 = 0x2088; // same line as D
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 7);
    t0.store_abs(Reg::R10, D);
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, F);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.load_abs(Reg::R1, F);
    t1.load_abs(Reg::R2, D);
    t1.halt();
    LitmusTest {
        name: "MP+same-line",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o[0] == 1 && o[1] != 7,
        relaxed_witness: None,
    }
}

/// MP where the consumer spins (the paper's Figure 1, including the
/// write-propagation liveness requirement: the spin must terminate).
fn mp_spin() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 7);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_with_jitter();
    let spin = t1.new_label();
    t1.bind(spin);
    t1.load_abs(Reg::R1, Y);
    t1.beq(Reg::R1, Reg::R0, spin);
    t1.load_abs(Reg::R2, X);
    t1.halt();
    LitmusTest {
        name: "MP+spin (Fig.1)",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o[0] == 1 && o[1] != 7,
        relaxed_witness: None,
    }
}

/// MP across two communication rounds: the producer publishes
/// `(Y, X) = (1, 1)` and later `(Y, X) = (2, 2)`; the consumer
/// observes round 1, then spins for round 2's flag and re-reads the
/// data line. `flag = 2 ∧ data ≠ 2` is forbidden under TSO.
///
/// The second round is what distinguishes this from plain `MP+spin`:
/// once the consumer has seen the producer once, a lazy-coherence
/// protocol must *keep* self-invalidating on later acquires. TSO-CC
/// does so via timestamp-reset broadcasts (§3.5); a timestamp source
/// that silently wraps (see `ProtocolFault::SkipTsReset`) makes
/// round-2 stamps look old, the stale round-1 data line survives, and
/// this test catches it — no single-round test can.
fn mp_rounds() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, Y);
    t0.store_abs(Reg::R10, X);
    t0.delay(200);
    t0.movi(Reg::R10, 2);
    t0.store_abs(Reg::R10, Y);
    t0.store_abs(Reg::R10, X);
    t0.halt();
    let mut t1 = asm_with_jitter();
    // Round 1: observe both lines (values unconstrained), establishing
    // the consumer's cached copies and per-writer timestamp tracking.
    // The fixed delay biases these reads to land after the producer's
    // round-1 stores, inside its inter-round gap.
    t1.delay(80);
    t1.load_abs(Reg::R11, X);
    t1.load_abs(Reg::R12, Y);
    // Round 2: spin until the flag shows 2, then the data line must
    // show 2 as well.
    let spin = t1.new_label();
    t1.bind(spin);
    t1.load_abs(Reg::R1, X);
    t1.bne_imm(Reg::R1, 2, spin);
    t1.load_abs(Reg::R2, Y);
    t1.halt();
    LitmusTest {
        name: "MP+rounds",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o[0] == 2 && o[1] != 2,
        relaxed_witness: None,
    }
}

/// 2+2W: two threads each write both locations in opposite orders;
/// each then reads the *other* location. Under TSO the two loads
/// cannot both see the respective first (overwritten) values.
fn two_plus_two_w() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 2);
    t0.store_abs(Reg::R10, Y);
    t0.load_abs(Reg::R1, X);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, Y);
    t1.movi(Reg::R10, 2);
    t1.store_abs(Reg::R10, X);
    t1.load_abs(Reg::R1, Y);
    t1.halt();
    LitmusTest {
        name: "2+2W",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![1, 1],
        // Each thread reads a location it wrote: it must observe its
        // own store or a coherence-later one, never 0.
        forbidden: |o| o[0] == 0 || o[1] == 0,
        relaxed_witness: None,
    }
}

/// R: `st x=1; st y=1 || st y=2; ld x`. If y's final value shows t1's
/// store lost (t0's y=1 came later) yet t1 read x=0, TSO is violated.
/// Register-only approximation: t1 re-reads y after its load of x.
fn r_test() -> LitmusTest {
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_with_jitter();
    t1.movi(Reg::R10, 2);
    t1.store_abs(Reg::R10, Y);
    t1.fence();
    t1.load_abs(Reg::R1, X);
    t1.halt();
    LitmusTest {
        name: "R+fence",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 1],
        // With the fence, t1's load is ordered after its y=2 store; if
        // x reads 0 then t1's store sequence precedes t0's stores in
        // the total store order... which is allowed. Only the
        // coherence-impossible value 2 at x is forbidden.
        forbidden: |o| o[0] == 2,
        relaxed_witness: None,
    }
}

/// MP+fences: fully fenced message passing (forbidden outcome must
/// stay forbidden — fences never weaken ordering).
fn mp_fence() -> LitmusTest {
    let mut t0 = asm_warmed();
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, X);
    t0.fence();
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_warmed();
    t1.load_abs(Reg::R1, Y);
    t1.fence();
    t1.load_abs(Reg::R2, X);
    t1.halt();
    LitmusTest {
        name: "MP+mfences",
        programs: vec![t0.finish(), t1.finish()],
        observed: vec![0, 2],
        forbidden: |o| o == [1, 0],
        relaxed_witness: None,
    }
}

/// ISA2-like chain: t0 writes data then flag1; t1 spins flag1, writes
/// flag2; t2 spins flag2, reads data. Transitive causality must hold
/// across three threads.
fn isa2_chain() -> LitmusTest {
    const F2: u64 = 0x20c0;
    let mut t0 = asm_with_jitter();
    t0.movi(Reg::R10, 9);
    t0.store_abs(Reg::R10, X);
    t0.movi(Reg::R10, 1);
    t0.store_abs(Reg::R10, Y);
    t0.halt();
    let mut t1 = asm_with_jitter();
    let spin1 = t1.new_label();
    t1.bind(spin1);
    t1.load_abs(Reg::R1, Y);
    t1.beq(Reg::R1, Reg::R0, spin1);
    t1.movi(Reg::R10, 1);
    t1.store_abs(Reg::R10, F2);
    t1.halt();
    let mut t2 = asm_with_jitter();
    let spin2 = t2.new_label();
    t2.bind(spin2);
    t2.load_abs(Reg::R1, F2);
    t2.beq(Reg::R1, Reg::R0, spin2);
    t2.load_abs(Reg::R2, X);
    t2.halt();
    LitmusTest {
        name: "ISA2-chain",
        programs: vec![t0.finish(), t1.finish(), t2.finish()],
        observed: vec![0, 1, 2],
        forbidden: |o| o[2] != 9, // t2 must see the data through the chain
        relaxed_witness: None,
    }
}

/// SB across 3 threads (rotating): pairwise store-buffer windows with a
/// third-party observer; only coherence violations are forbidden.
fn sb3() -> LitmusTest {
    const Z: u64 = 0x2100;
    let mk = |w: u64, r: u64| {
        let mut t = asm_warmed();
        t.movi(Reg::R10, 1);
        t.store_abs(Reg::R10, w);
        t.load_abs(Reg::R1, r);
        t.halt();
        t.finish()
    };
    LitmusTest {
        name: "SB3",
        programs: vec![mk(X, Y), mk(Y, Z), mk(Z, X)],
        observed: vec![1, 1, 1],
        forbidden: |_| false, // all 8 outcomes TSO-allowed
        relaxed_witness: Some(|o| o == [0, 0, 0]),
    }
}

/// The full litmus suite.
pub fn litmus_suite() -> Vec<LitmusTest> {
    vec![
        sb(),
        sb_fence(),
        mp(),
        mp_fence(),
        mp_spin(),
        mp_rounds(),
        mp_same_line(),
        lb(),
        s_test(),
        r_test(),
        iriw(),
        wrc(),
        isa2_chain(),
        corr(),
        cowr(),
        two_plus_two_w(),
        sb3(),
        rmw_sb(),
    ]
}

/// Runs `test` `iterations` times under `protocol` with varying timing
/// seeds; collects outcomes and checks the TSO verdicts.
///
/// # Panics
///
/// Panics if a run fails to terminate (a liveness violation — e.g. a
/// spin that never observes its release would hit the deadlock
/// detector).
pub fn run_litmus(
    test: &LitmusTest,
    protocol: impl Into<ProtocolHandle>,
    iterations: u64,
    seed: u64,
) -> LitmusReport {
    let protocol = protocol.into();
    let mut report = LitmusReport::default();
    let n = test.programs.len();
    for it in 0..iterations {
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(n.max(2))
            .protocol(protocol.clone())
            .build()
            .expect("valid config");
        cfg.seed = seed ^ (it.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut sys = System::new(cfg, test.programs.clone());
        sys.run(10_000_000).unwrap_or_else(|e| {
            panic!("litmus {} on {}: {e}", test.name, protocol.protocol_name())
        });
        let mut outcome = Vec::new();
        for (t, &n_obs) in test.observed.iter().enumerate() {
            for &obs in &OBS[..n_obs] {
                outcome.push(sys.core(t).thread().reg(obs));
            }
        }
        report.iterations += 1;
        if (test.forbidden)(&outcome) {
            report.forbidden_count += 1;
        }
        if let Some(witness) = test.relaxed_witness {
            if witness(&outcome) {
                report.relaxed_seen = true;
            }
        }
        *report.outcomes.entry(outcome).or_insert(0) += 1;
    }
    report
}

/// The verdict of one fault-injected litmus run: which oracle (if any)
/// caught the mutation.
#[derive(Clone, Debug)]
pub enum FaultVerdict {
    /// Every iteration terminated with no forbidden outcome — the
    /// injected fault (if any) escaped this test's oracles.
    Clean,
    /// Forbidden outcomes appeared: the TSO safety oracle caught it.
    Forbidden {
        /// Iterations whose outcome was forbidden.
        count: u64,
        /// Iterations executed.
        iterations: u64,
    },
    /// A run failed to terminate: the liveness oracle (deadlock or
    /// cycle-budget detector) caught it.
    Hung {
        /// The run error's display string.
        error: String,
        /// Structured diagnosis of what the machine was waiting on.
        report: Box<HangReport>,
    },
}

impl FaultVerdict {
    /// Whether any oracle flagged the run.
    pub fn detected(&self) -> bool {
        !matches!(self, FaultVerdict::Clean)
    }
}

/// Like [`run_litmus`], but with a [`FaultPlan`] installed and a
/// non-panicking verdict: a fault-injection campaign *expects* some
/// runs to deadlock or produce forbidden outcomes — those are
/// detections, not harness failures.
pub fn run_litmus_faulted(
    test: &LitmusTest,
    protocol: impl Into<ProtocolHandle>,
    iterations: u64,
    seed: u64,
    faults: FaultPlan,
) -> FaultVerdict {
    let protocol = protocol.into();
    let n = test.programs.len();
    let mut forbidden = 0u64;
    for it in 0..iterations {
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(n.max(2))
            .protocol(protocol.clone())
            .build()
            .expect("valid config");
        cfg.seed = seed ^ (it.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        cfg.faults = faults;
        let mut sys = System::new(cfg, test.programs.clone());
        if let Err(e) = sys.run(10_000_000) {
            return FaultVerdict::Hung {
                error: e.to_string(),
                report: Box::new(sys.hang_report()),
            };
        }
        let mut outcome = Vec::new();
        for (t, &n_obs) in test.observed.iter().enumerate() {
            for &obs in &OBS[..n_obs] {
                outcome.push(sys.core(t).thread().reg(obs));
            }
        }
        if (test.forbidden)(&outcome) {
            forbidden += 1;
        }
    }
    if forbidden > 0 {
        FaultVerdict::Forbidden {
            count: forbidden,
            iterations,
        }
    } else {
        FaultVerdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_protocols::Protocol;

    #[test]
    fn suite_has_the_expected_tests() {
        let suite = litmus_suite();
        assert!(suite.len() >= 10);
        let names: Vec<_> = suite.iter().map(|t| t.name).collect();
        assert!(names.contains(&"SB"));
        assert!(names.contains(&"MP"));
        assert!(names.contains(&"IRIW"));
    }

    #[test]
    fn mp_passes_on_default_tsocc() {
        let t = mp();
        let report = run_litmus(&t, Protocol::TsoCc(Default::default()), 30, 7);
        assert!(report.passed(), "outcomes: {:?}", report.outcomes);
        assert_eq!(report.iterations, 30);
    }

    #[test]
    fn sb_relaxation_is_observable_on_mesi() {
        // The write buffer alone (even under eager MESI) must produce
        // the TSO-allowed 0,0 outcome at least once.
        let t = sb();
        let report = run_litmus(&t, Protocol::Mesi, 40, 3);
        assert!(report.passed());
        assert!(
            report.relaxed_seen,
            "store buffering never observed: {:?}",
            report.outcomes
        );
    }
}
