//! Running workloads on the simulated machine.

use tsocc::{RunError, RunStats, System, SystemConfig};
use tsocc_mem::Addr;

use crate::kernels::Workload;

/// Builds a [`System`] for `workload` (memory pre-initialized) and runs
/// it to completion.
///
/// The cycle budget scales with the configured core count; workloads at
/// the scales shipped in this crate finish far below it.
///
/// # Errors
///
/// Propagates [`RunError`] from [`System::run`].
///
/// # Panics
///
/// Panics if the workload has more threads than the system has cores.
pub fn run_workload(workload: &Workload, cfg: SystemConfig) -> Result<RunStats, RunError> {
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    sys.run(200_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Benchmark, Scale};
    use tsocc::SystemConfig;
    use tsocc_proto::TsoCcConfig;
    use tsocc_protocols::Protocol;

    #[test]
    fn every_benchmark_completes_on_mesi_and_tsocc() {
        for b in Benchmark::ALL {
            let w = b.build(4, Scale::Tiny, 11);
            for protocol in [
                Protocol::Mesi,
                Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
            ] {
                let cfg = SystemConfig::builder()
                    .small()
                    .cores(4)
                    .protocol(protocol)
                    .build()
                    .expect("valid config");
                let stats = run_workload(&w, cfg)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name(), protocol.name()));
                assert!(stats.instructions > 0, "{}", b.name());
            }
        }
    }

    #[test]
    fn stamp_kernels_complete_on_all_tsocc_variants() {
        let w = Benchmark::Intruder.build(4, Scale::Tiny, 5);
        for protocol in Protocol::paper_configs() {
            let cfg = SystemConfig::builder()
                .small()
                .cores(4)
                .protocol(protocol)
                .build()
                .expect("valid config");
            let stats =
                run_workload(&w, cfg).unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
            assert!(stats.rmw_latency.count() > 0, "STM commits use CAS");
        }
    }
}
