//! Synchronization library emitted as TVM IR.
//!
//! These are the lock-based primitives the paper's SPLASH-2/PARSEC
//! workloads use: a test-and-test-and-set spinlock with randomized
//! backoff, a central counter barrier with a generation flag, and a
//! flag-based producer-consumer slot handoff. All of them synchronize
//! through plain loads/stores/RMWs — exactly the "any write may be a
//! release, any read may be an acquire" pattern TSO-CC must support
//! (paper §1.2).
//!
//! Register conventions: the emitters clobber `R26..=R29` (and `R30`
//! via the assembler's immediate-compare helpers); kernel code should
//! keep its live state in `R1..=R20`.

use tsocc_isa::{Asm, Reg};

/// Emits a spinlock acquire on the word at `lock_addr`.
///
/// Test-and-test-and-set: a `swap(lock, 1)` attempt, then a read-only
/// spin while the lock is held (so the spinning happens in the local
/// cache), with a bounded random backoff between attempts.
///
/// Clobbers `R28`, `R29`.
pub fn lock_acquire(a: &mut Asm, lock_addr: u64) {
    let try_ = a.new_label();
    let acquired = a.new_label();
    a.bind(try_);
    a.movi(Reg::R28, 1);
    a.swap(Reg::R29, Reg::R0, lock_addr, Reg::R28);
    a.beq(Reg::R29, Reg::R0, acquired);
    // Lock was held: spin on reads until it looks free, then retry.
    let spin = a.new_label();
    a.bind(spin);
    a.rand_delay(16);
    a.load_abs(Reg::R29, lock_addr);
    a.bne(Reg::R29, Reg::R0, spin);
    a.jump(try_);
    a.bind(acquired);
}

/// Emits a spinlock release (a plain store — the release write of TSO).
pub fn lock_release(a: &mut Asm, lock_addr: u64) {
    a.store_abs(Reg::R0, lock_addr);
}

/// Addresses of a central barrier: an arrival counter and a generation
/// word, on separate lines.
#[derive(Clone, Copy, Debug)]
pub struct Barrier {
    /// Arrival counter word (fetch-add target).
    pub count: u64,
    /// Generation word the waiters spin on.
    pub generation: u64,
}

impl Barrier {
    /// Allocates a barrier in `layout`.
    pub fn alloc(layout: &mut crate::layout::Layout) -> Self {
        Barrier {
            count: layout.line(),
            generation: layout.line(),
        }
    }
}

/// Emits a barrier wait for `n_threads` participants.
///
/// Central counter with a generation flag: the last arrival resets the
/// counter and bumps the generation; everyone else spins on the
/// generation word. Safe under TSO-CC's bounded-stale reads because a
/// thread's entry read of the generation can never be older than the
/// value it observed leaving the previous barrier (per-location
/// monotonicity), and the spin is exactly the polling acquire the
/// protocol's write-propagation rule guarantees to terminate (§3.1).
///
/// Clobbers `R26..=R29`.
pub fn barrier_wait(a: &mut Asm, bar: Barrier, n_threads: u64) {
    a.load_abs(Reg::R26, bar.generation);
    a.movi(Reg::R28, 1);
    a.fetch_add(Reg::R27, Reg::R0, bar.count, Reg::R28);
    let last = a.new_label();
    let done = a.new_label();
    a.beq_imm(Reg::R27, n_threads - 1, last);
    // Waiter: spin until the generation changes.
    let spin = a.new_label();
    a.bind(spin);
    a.load_abs(Reg::R29, bar.generation);
    a.beq(Reg::R29, Reg::R26, spin);
    a.jump(done);
    // Last arrival: reset the counter, then publish the new
    // generation. TSO's w→w order makes the reset visible before the
    // release.
    a.bind(last);
    a.store_abs(Reg::R0, bar.count);
    a.addi(Reg::R29, Reg::R26, 1);
    a.store_abs(Reg::R29, bar.generation);
    a.bind(done);
}

/// Emits the producer side of a flag-based slot handoff: write the
/// value in `value_reg` to the slot's data word, then set its flag
/// (the release write).
///
/// `slot_addr` is the base of a line holding `[data, flag]`.
pub fn slot_produce(a: &mut Asm, slot_addr: u64, value_reg: Reg) {
    a.store_abs(value_reg, slot_addr);
    a.movi(Reg::R28, 1);
    a.store_abs(Reg::R28, slot_addr + 8);
}

/// Emits the consumer side: spin on the slot's flag (the polling
/// acquire), then read the data word into `dest`.
///
/// Clobbers `R29`.
pub fn slot_consume(a: &mut Asm, slot_addr: u64, dest: Reg) {
    let spin = a.new_label();
    a.bind(spin);
    a.load_abs(Reg::R29, slot_addr + 8);
    a.beq(Reg::R29, Reg::R0, spin);
    a.load_abs(dest, slot_addr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use std::collections::HashMap;
    use tsocc_isa::refvm::run_ref;

    #[test]
    fn lock_roundtrip_single_thread() {
        let mut l = Layout::new();
        let lock = l.line();
        let mut a = Asm::new();
        lock_acquire(&mut a, lock);
        a.movi(Reg::R1, 7);
        lock_release(&mut a, lock);
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 10_000).unwrap();
        assert_eq!(regs[Reg::R1.index()], 7);
        assert_eq!(mem.get(&lock).copied().unwrap_or(0), 0, "lock released");
    }

    #[test]
    fn barrier_single_thread_passes() {
        let mut l = Layout::new();
        let bar = Barrier::alloc(&mut l);
        let mut a = Asm::new();
        barrier_wait(&mut a, bar, 1);
        barrier_wait(&mut a, bar, 1);
        a.movi(Reg::R1, 1);
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 10_000).unwrap();
        assert_eq!(regs[Reg::R1.index()], 1);
        assert_eq!(mem.get(&bar.count).copied().unwrap_or(0), 0);
        assert_eq!(mem.get(&bar.generation).copied().unwrap_or(0), 2);
    }

    #[test]
    fn slot_handoff_functional() {
        let mut l = Layout::new();
        let slot = l.line();
        let mut a = Asm::new();
        a.movi(Reg::R1, 42);
        slot_produce(&mut a, slot, Reg::R1);
        slot_consume(&mut a, slot, Reg::R2);
        a.halt();
        let mut mem = HashMap::new();
        let regs = run_ref(&a.finish(), &mut mem, 10_000).unwrap();
        assert_eq!(regs[Reg::R2.index()], 42);
    }
}
