//! The paper's Table 3 benchmark suite as synthetic kernels.
//!
//! Each kernel reproduces the *sharing pattern* of its namesake (see
//! DESIGN.md §3): the private/shared access mix, the synchronization
//! style (barriers, locks, pipelines, transactions) and the pathologies
//! the paper highlights (false sharing in non-contiguous `lu`, the
//! write-miss-heavy permutation of `radix`, the SharedRO-dominated
//! `raytrace`/`blackscholes`).

use tsocc_isa::{Asm, Program, Reg};

use crate::layout::Layout;
use crate::stm;
use crate::sync::{self, Barrier};

/// Workload size multiplier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Milliseconds-scale runs for unit tests (factor 1).
    Tiny,
    /// Default figure-harness scale (factor 4).
    Small,
    /// Longer runs that amortize cold misses (factor 20).
    Full,
}

impl Scale {
    /// The iteration multiplier.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Full => 20,
        }
    }
}

/// A ready-to-run multi-threaded workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as the paper spells it (Figure 3's x axis).
    pub name: String,
    /// One program per thread.
    pub programs: Vec<Program>,
    /// Initial memory words (address, value).
    pub init: Vec<(u64, u64)>,
}

/// The sixteen benchmarks of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Blackscholes,
    Canneal,
    Dedup,
    Fluidanimate,
    X264,
    Fft,
    LuCont,
    LuNonCont,
    Radix,
    Raytrace,
    WaterNsq,
    Bayes,
    Genome,
    Intruder,
    Ssca2,
    Vacation,
}

impl Benchmark {
    /// All benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Blackscholes,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Fluidanimate,
        Benchmark::X264,
        Benchmark::Fft,
        Benchmark::LuCont,
        Benchmark::LuNonCont,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::WaterNsq,
        Benchmark::Bayes,
        Benchmark::Genome,
        Benchmark::Intruder,
        Benchmark::Ssca2,
        Benchmark::Vacation,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::X264 => "x264",
            Benchmark::Fft => "fft",
            Benchmark::LuCont => "lu (cont.)",
            Benchmark::LuNonCont => "lu (non-cont.)",
            Benchmark::Radix => "radix",
            Benchmark::Raytrace => "raytrace",
            Benchmark::WaterNsq => "water-nsq",
            Benchmark::Bayes => "bayes",
            Benchmark::Genome => "genome",
            Benchmark::Intruder => "intruder",
            Benchmark::Ssca2 => "ssca2",
            Benchmark::Vacation => "vacation",
        }
    }

    /// Which suite the benchmark comes from (Table 3's row groups).
    pub fn suite(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes
            | Benchmark::Canneal
            | Benchmark::Dedup
            | Benchmark::Fluidanimate
            | Benchmark::X264 => "PARSEC",
            Benchmark::Fft
            | Benchmark::LuCont
            | Benchmark::LuNonCont
            | Benchmark::Radix
            | Benchmark::Raytrace
            | Benchmark::WaterNsq => "SPLASH-2",
            Benchmark::Bayes
            | Benchmark::Genome
            | Benchmark::Intruder
            | Benchmark::Ssca2
            | Benchmark::Vacation => "STAMP",
        }
    }

    /// Builds the workload for `n_threads` threads at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn build(&self, n_threads: usize, scale: Scale, seed: u64) -> Workload {
        assert!(n_threads > 0, "need at least one thread");
        let f = scale.factor();
        let programs = match self {
            Benchmark::Blackscholes => blackscholes(n_threads, f, seed),
            Benchmark::Canneal => canneal(n_threads, f, seed),
            Benchmark::Dedup => dedup(n_threads, f),
            Benchmark::Fluidanimate => fluidanimate(n_threads, f),
            Benchmark::X264 => x264(n_threads, f),
            Benchmark::Fft => fft(n_threads, f),
            Benchmark::LuCont => lu(n_threads, f, true),
            Benchmark::LuNonCont => lu(n_threads, f, false),
            Benchmark::Radix => radix(n_threads, f, seed),
            Benchmark::Raytrace => raytrace(n_threads, f, seed),
            Benchmark::WaterNsq => water_nsq(n_threads, f),
            Benchmark::Bayes => stamp(n_threads, StampShape::bayes(f), seed),
            Benchmark::Genome => stamp(n_threads, StampShape::genome(f), seed),
            Benchmark::Intruder => stamp(n_threads, StampShape::intruder(f), seed),
            Benchmark::Ssca2 => stamp(n_threads, StampShape::ssca2(f), seed),
            Benchmark::Vacation => stamp(n_threads, StampShape::vacation(f), seed),
        };
        Workload {
            name: self.name().to_string(),
            programs,
            init: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// shared code-generation helpers
// ---------------------------------------------------------------------

/// Emits a 64-bit LCG step on `state` and leaves `out = (state >> 33)
/// % modulus` (a pseudo-random index).
fn lcg_index(a: &mut Asm, state: Reg, out: Reg, modulus: u64) {
    a.muli(state, state, 6364136223846793005);
    a.addi(state, state, 1442695040888963407);
    a.shri(out, state, 33);
    a.remi(out, out, modulus);
}

/// Emits a counted loop: `body(asm)` executed `n` times using `ctr` as
/// the counter.
fn counted_loop<F>(a: &mut Asm, ctr: Reg, n: u64, mut body: F)
where
    F: FnMut(&mut Asm),
{
    a.movi(ctr, 0);
    let top = a.new_label();
    a.bind(top);
    body(a);
    a.addi(ctr, ctr, 1);
    a.blt_imm(ctr, n, top);
}

// ---------------------------------------------------------------------
// PARSEC
// ---------------------------------------------------------------------

/// blackscholes: embarrassingly parallel option pricing — large private
/// compute, a read-only parameter table, one barrier at the end.
fn blackscholes(n: usize, f: u64, seed: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let params = layout.words(128); // 16 lines, read-only
    let bar = Barrier::alloc(&mut layout);
    let outs: Vec<u64> = (0..n).map(|_| layout.words(64)).collect();
    let iters = 48 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            a.movi(Reg::R16, seed ^ (t as u64) << 8 | 1);
            counted_loop(&mut a, Reg::R1, iters, |a| {
                // Two read-only parameter loads per option.
                lcg_index(a, Reg::R16, Reg::R17, 128);
                a.shli(Reg::R17, Reg::R17, 3);
                a.load(Reg::R2, Reg::R17, params);
                lcg_index(a, Reg::R16, Reg::R17, 128);
                a.shli(Reg::R17, Reg::R17, 3);
                a.load(Reg::R3, Reg::R17, params);
                // Private compute, then a private result store.
                a.add(Reg::R4, Reg::R2, Reg::R3);
                a.delay(24);
                a.remi(Reg::R18, Reg::R1, 64);
                a.shli(Reg::R18, Reg::R18, 3);
                a.store(Reg::R4, Reg::R18, outs[t]);
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            a.halt();
            a.finish()
        })
        .collect()
}

/// canneal: lock-free random element swaps — fine-grained migratory
/// sharing with poor locality.
fn canneal(n: usize, f: u64, seed: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let elems = 64u64;
    let grid = layout.padded_words(elems);
    let bar = Barrier::alloc(&mut layout);
    let iters = 32 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            a.movi(Reg::R16, seed ^ ((t as u64 + 3) << 16) | 1);
            counted_loop(&mut a, Reg::R1, iters, |a| {
                // Pick a random element, swap our token into it, keep
                // the displaced value as the next token (migratory RMW).
                lcg_index(a, Reg::R16, Reg::R17, elems);
                a.muli(Reg::R17, Reg::R17, 64);
                a.swap(Reg::R2, Reg::R17, grid, Reg::R2);
                a.delay(8);
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            a.halt();
            a.finish()
        })
        .collect()
}

/// dedup: a pipeline of stages connected by flag-handshake slots —
/// pure producer-consumer sharing.
fn dedup(n: usize, f: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let items = 24 * f;
    // queues[k] connects stage k -> k+1; one line per item slot.
    let queues: Vec<u64> = (0..n.saturating_sub(1).max(1))
        .map(|_| layout.lines(items))
        .collect();
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            if t == 0 {
                // Source stage: produce items.
                counted_loop(&mut a, Reg::R1, items, |a| {
                    a.addi(Reg::R2, Reg::R1, 100);
                    a.delay(12);
                    a.muli(Reg::R17, Reg::R1, 64);
                    a.add(Reg::R17, Reg::R17, Reg::R0);
                    // slot = queues[0] + i*64
                    a.store(Reg::R2, Reg::R17, queues[0]); // data
                    a.movi(Reg::R3, 1);
                    a.store(Reg::R3, Reg::R17, queues[0] + 8); // flag
                });
            } else {
                let in_q = queues[t - 1];
                let out_q = if t < n - 1 { Some(queues[t]) } else { None };
                counted_loop(&mut a, Reg::R1, items, |a| {
                    a.muli(Reg::R17, Reg::R1, 64);
                    // Spin on the input slot's flag.
                    let spin = a.new_label();
                    a.bind(spin);
                    a.load(Reg::R4, Reg::R17, in_q + 8);
                    a.beq(Reg::R4, Reg::R0, spin);
                    a.load(Reg::R2, Reg::R17, in_q);
                    a.delay(16); // stage work (hashing/compression)
                    if let Some(out) = out_q {
                        a.addi(Reg::R2, Reg::R2, 1);
                        a.store(Reg::R2, Reg::R17, out);
                        a.movi(Reg::R3, 1);
                        a.store(Reg::R3, Reg::R17, out + 8);
                    }
                });
            }
            a.halt();
            a.finish()
        })
        .collect()
}

/// fluidanimate: per-cell locks with neighbour updates — a high lock
/// rate and neighbour sharing.
fn fluidanimate(n: usize, f: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let cells = 2 * n as u64;
    // Each cell is one line: [value, lock].
    let grid = layout.lines(cells);
    let bar = Barrier::alloc(&mut layout);
    let iters = 16 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            let my = [2 * t as u64, 2 * t as u64 + 1];
            counted_loop(&mut a, Reg::R1, iters, |a| {
                for &c in &my {
                    let nb = (c + 2) % cells;
                    let cell = grid + c * 64;
                    let nb_cell = grid + nb * 64;
                    // Lock the neighbour, exchange values.
                    sync::lock_acquire(a, nb_cell + 8);
                    a.load_abs(Reg::R2, nb_cell);
                    a.load_abs(Reg::R3, cell);
                    a.add(Reg::R3, Reg::R3, Reg::R2);
                    a.store_abs(Reg::R3, cell);
                    a.addi(Reg::R2, Reg::R2, 1);
                    a.store_abs(Reg::R2, nb_cell);
                    sync::lock_release(a, nb_cell + 8);
                    a.delay(10);
                }
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            a.halt();
            a.finish()
        })
        .collect()
}

/// x264: wavefront pipeline — each row waits for the previous row's
/// progress counter to run ahead (motion-vector dependency).
fn x264(n: usize, f: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let progress = layout.padded_words(n as u64);
    let blocks = 24 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            counted_loop(&mut a, Reg::R1, blocks, |a| {
                if t > 0 {
                    // Wait until the previous row is 2 blocks ahead (or
                    // done).
                    let prev = progress + (t as u64 - 1) * 64;
                    a.addi(Reg::R2, Reg::R1, 2);
                    // need = min(i+2, blocks): the previous row ends at
                    // `blocks`, so don't wait for progress past it.
                    a.movi(Reg::R30, blocks);
                    let no_clamp = a.new_label();
                    a.blt(Reg::R2, Reg::R30, no_clamp);
                    a.mov(Reg::R2, Reg::R30);
                    a.bind(no_clamp);
                    let spin = a.new_label();
                    a.bind(spin);
                    a.load_abs(Reg::R3, prev);
                    a.blt(Reg::R3, Reg::R2, spin);
                }
                a.delay(28); // encode one macroblock row segment
                a.addi(Reg::R4, Reg::R1, 1);
                a.store_abs(Reg::R4, progress + t as u64 * 64);
            });
            a.halt();
            a.finish()
        })
        .collect()
}

// ---------------------------------------------------------------------
// SPLASH-2
// ---------------------------------------------------------------------

/// fft: alternating private butterfly phases and all-to-all transpose
/// phases separated by barriers.
fn fft(n: usize, f: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let lines_per = 8u64;
    let parts: Vec<u64> = (0..n).map(|_| layout.lines(lines_per)).collect();
    let bar = Barrier::alloc(&mut layout);
    let phases = 2 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            counted_loop(&mut a, Reg::R1, phases, |a| {
                // Butterfly phase: private read-modify-write over our
                // partition.
                counted_loop(a, Reg::R2, lines_per, |a| {
                    a.muli(Reg::R17, Reg::R2, 64);
                    a.load(Reg::R3, Reg::R17, parts[t]);
                    a.addi(Reg::R3, Reg::R3, 1);
                    a.store(Reg::R3, Reg::R17, parts[t]);
                    a.delay(6);
                });
                sync::barrier_wait(a, bar, n as u64);
                // Transpose phase: read one line from every other
                // partition.
                for j in 1..n {
                    let other = parts[(t + j) % n];
                    let line_idx = (t as u64) % lines_per;
                    a.load_abs(Reg::R4, other + line_idx * 64);
                    a.add(Reg::R5, Reg::R5, Reg::R4);
                }
                sync::barrier_wait(a, bar, n as u64);
            });
            a.halt();
            a.finish()
        })
        .collect()
}

/// lu: blocked factorization. `contiguous` allocates each thread's
/// block on its own lines; the non-contiguous variant interleaves
/// threads' words within lines, producing the paper's false-sharing
/// case (§5, "the version which does not eliminate false-sharing
/// performs significantly better with TSO-CC").
fn lu(n: usize, f: u64, contiguous: bool) -> Vec<Program> {
    let mut layout = Layout::new();
    let words_per = 32u64;
    let bar = Barrier::alloc(&mut layout);
    // Contiguous: each thread's block is words_per consecutive words.
    // Non-contiguous: thread t owns words t, t+n, t+2n, ... of one big
    // array — neighbouring threads share every line.
    let base = layout.words(words_per * n as u64);
    let word_addr = |t: usize, i: u64| -> u64 {
        if contiguous {
            base + (t as u64 * words_per + i) * 8
        } else {
            base + (i * n as u64 + t as u64) * 8
        }
    };
    let steps = 4 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            counted_loop(&mut a, Reg::R1, steps, |a| {
                // Pivot owner updates its block first.
                let owner = 0usize; // pivot block rotates in real lu; keep 0 for read sharing
                if t == owner {
                    for i in 0..words_per {
                        a.load_abs(Reg::R2, word_addr(owner, i));
                        a.addi(Reg::R2, Reg::R2, 1);
                        a.store_abs(Reg::R2, word_addr(owner, i));
                    }
                }
                sync::barrier_wait(a, bar, n as u64);
                // Everyone reads the pivot block and updates their own.
                if t != owner {
                    for i in (0..words_per).step_by(4) {
                        a.load_abs(Reg::R3, word_addr(owner, i));
                        a.add(Reg::R4, Reg::R4, Reg::R3);
                    }
                    for i in 0..words_per {
                        a.load_abs(Reg::R5, word_addr(t, i));
                        a.add(Reg::R5, Reg::R5, Reg::R4);
                        a.store_abs(Reg::R5, word_addr(t, i));
                    }
                }
                a.delay(12);
                sync::barrier_wait(a, bar, n as u64);
            });
            a.halt();
            a.finish()
        })
        .collect()
}

/// radix: parallel histogram via fetch-adds, then a permutation phase
/// writing into other threads' output regions — the paper's
/// write-miss-heavy case (Figure 5).
fn radix(n: usize, f: u64, seed: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let buckets = 32u64;
    let hist = layout.padded_words(buckets);
    let bar = Barrier::alloc(&mut layout);
    let outs: Vec<u64> = (0..n).map(|_| layout.words(64)).collect();
    let keys = 32 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            a.movi(Reg::R16, seed ^ ((t as u64 + 11) << 24) | 1);
            a.movi(Reg::R10, 1);
            // Histogram phase: contended fetch-adds on bucket counters.
            counted_loop(&mut a, Reg::R1, keys, |a| {
                lcg_index(a, Reg::R16, Reg::R17, buckets);
                a.muli(Reg::R17, Reg::R17, 64);
                a.fetch_add(Reg::R2, Reg::R17, hist, Reg::R10);
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            // Read back the histogram (shared reads).
            counted_loop(&mut a, Reg::R1, buckets, |a| {
                a.muli(Reg::R17, Reg::R1, 64);
                a.load(Reg::R3, Reg::R17, hist);
                a.add(Reg::R4, Reg::R4, Reg::R3);
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            // Permutation phase: scatter keys into other threads'
            // output regions (remote write misses).
            a.movi(Reg::R16, seed ^ ((t as u64 + 29) << 24) | 1);
            counted_loop(&mut a, Reg::R1, keys, |a| {
                lcg_index(a, Reg::R16, Reg::R17, n as u64);
                // out base = outs[r17]; pick slot i % 64.
                a.remi(Reg::R18, Reg::R1, 64);
                a.shli(Reg::R18, Reg::R18, 3);
                // Compute target base via a chain of conditional
                // copies (no indirect tables in the IR).
                for (r, out) in outs.iter().enumerate() {
                    let skip = a.new_label();
                    a.bne_imm(Reg::R17, r as u64, skip);
                    a.addi(Reg::R19, Reg::R18, *out);
                    a.bind(skip);
                }
                a.store(Reg::R4, Reg::R19, 0);
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            a.halt();
            a.finish()
        })
        .collect()
}

/// raytrace: a big read-only scene plus a fetch-add work queue —
/// SharedRO-dominated reads (Figure 6's read-hit (SharedRO) bars).
fn raytrace(n: usize, f: u64, seed: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let scene_words = 256u64;
    let scene = layout.words(scene_words);
    let ticket = layout.line();
    let outs: Vec<u64> = (0..n).map(|_| layout.words(32)).collect();
    let tiles = 24 * f * n as u64 / 2;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            a.movi(Reg::R16, seed ^ ((t as u64 + 5) << 20) | 1);
            a.movi(Reg::R10, 1);
            let done = a.new_label();
            let grab = a.new_label();
            a.bind(grab);
            a.fetch_add(Reg::R1, Reg::R0, ticket, Reg::R10);
            a.movi(Reg::R30, tiles);
            a.bge(Reg::R1, Reg::R30, done);
            // Trace: sample the read-only scene.
            for _ in 0..6 {
                lcg_index(&mut a, Reg::R16, Reg::R17, scene_words);
                a.shli(Reg::R17, Reg::R17, 3);
                a.load(Reg::R2, Reg::R17, scene);
                a.add(Reg::R3, Reg::R3, Reg::R2);
            }
            a.delay(30);
            a.remi(Reg::R18, Reg::R1, 32);
            a.shli(Reg::R18, Reg::R18, 3);
            a.store(Reg::R3, Reg::R18, outs[t]);
            a.jump(grab);
            a.bind(done);
            a.halt();
            a.finish()
        })
        .collect()
}

/// water-nsq: O(n²) force reads over other molecules with per-molecule
/// locks, then a private update phase — mostly private with bursts of
/// locking.
fn water_nsq(n: usize, f: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    // One line per molecule: [value, lock].
    let mols = layout.lines(n as u64);
    let bar = Barrier::alloc(&mut layout);
    let steps = 4 * f;
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            counted_loop(&mut a, Reg::R1, steps, |a| {
                // Force phase: read every other molecule; lock/update a
                // quarter of them.
                for j in 0..n {
                    if j == t {
                        continue;
                    }
                    let mol = mols + j as u64 * 64;
                    a.load_abs(Reg::R2, mol);
                    a.add(Reg::R3, Reg::R3, Reg::R2);
                    if j % 4 == t % 4 {
                        sync::lock_acquire(a, mol + 8);
                        a.load_abs(Reg::R4, mol);
                        a.addi(Reg::R4, Reg::R4, 1);
                        a.store_abs(Reg::R4, mol);
                        sync::lock_release(a, mol + 8);
                    }
                }
                sync::barrier_wait(a, bar, n as u64);
                // Private update of our own molecule.
                let mine = mols + t as u64 * 64;
                a.load_abs(Reg::R5, mine);
                a.add(Reg::R5, Reg::R5, Reg::R3);
                a.store_abs(Reg::R5, mine);
                a.delay(20);
                sync::barrier_wait(a, bar, n as u64);
            });
            a.halt();
            a.finish()
        })
        .collect()
}

// ---------------------------------------------------------------------
// STAMP (over the NOrec-style STM)
// ---------------------------------------------------------------------

/// Shape of a STAMP benchmark's transactions.
///
/// Reads are uniform over the whole `table`; writes target only its
/// first `hot` lines. This mirrors real STAMP structure: transactions
/// traverse large, mostly-clean data structures (which decay to
/// SharedRO under TSO-CC) and mutate a few hot nodes.
#[derive(Clone, Copy, Debug)]
struct StampShape {
    /// Shared table size in padded words (read footprint).
    table: u64,
    /// Writes land in the first `hot` lines of the table.
    hot: u64,
    /// Reads per transaction.
    reads: u64,
    /// Writes per transaction.
    writes: u64,
    /// Compute cycles inside the transaction.
    compute: u32,
    /// Transactions per thread.
    txns: u64,
}

impl StampShape {
    /// bayes: long transactions with large read footprints.
    fn bayes(f: u64) -> Self {
        StampShape {
            table: 256,
            hot: 24,
            reads: 10,
            writes: 4,
            compute: 50,
            txns: 6 * f,
        }
    }
    /// genome: medium transactions over a large hash-segment space.
    fn genome(f: u64) -> Self {
        StampShape {
            table: 512,
            hot: 32,
            reads: 6,
            writes: 2,
            compute: 20,
            txns: 10 * f,
        }
    }
    /// intruder: short transactions on a hot table — high abort rate.
    fn intruder(f: u64) -> Self {
        StampShape {
            table: 16,
            hot: 8,
            reads: 4,
            writes: 3,
            compute: 8,
            txns: 14 * f,
        }
    }
    /// ssca2: tiny low-conflict transactions over a big graph.
    fn ssca2(f: u64) -> Self {
        StampShape {
            table: 1024,
            hot: 256,
            reads: 2,
            writes: 2,
            compute: 5,
            txns: 20 * f,
        }
    }
    /// vacation: medium tree-lookup-like transactions.
    fn vacation(f: u64) -> Self {
        StampShape {
            table: 384,
            hot: 24,
            reads: 8,
            writes: 2,
            compute: 25,
            txns: 8 * f,
        }
    }
}

/// Generic STAMP kernel: `txns` transactions per thread over a shared
/// table, each reading `reads` random words, computing, and committing
/// `writes` random words under the NOrec-style global sequence lock.
fn stamp(n: usize, shape: StampShape, seed: u64) -> Vec<Program> {
    let mut layout = Layout::new();
    let glb = layout.line();
    let table = layout.padded_words(shape.table);
    let bar = Barrier::alloc(&mut layout);
    (0..n)
        .map(|t| {
            let mut a = Asm::new();
            a.movi(Reg::R16, seed ^ ((t as u64 + 17) << 12) | 1);
            counted_loop(&mut a, Reg::R1, shape.txns, |a| {
                // Save the PRNG state so the read phase is deterministic
                // across NOrec validation and abort re-execution.
                a.mov(Reg::R19, Reg::R16);
                stm::txn_execute(
                    a,
                    glb,
                    shape.compute,
                    |a, dest| {
                        a.mov(Reg::R16, Reg::R19);
                        a.movi(dest, 0);
                        for _ in 0..shape.reads {
                            lcg_index(a, Reg::R16, Reg::R17, shape.table);
                            a.muli(Reg::R17, Reg::R17, 64);
                            a.load(Reg::R3, Reg::R17, table);
                            a.add(dest, dest, Reg::R3);
                        }
                    },
                    |a| {
                        // Write set, replayed under the sequence lock;
                        // writes go to the hot region only, and table
                        // values only grow (monotonic counters), so the
                        // summed validation cannot alias.
                        for _ in 0..shape.writes {
                            lcg_index(a, Reg::R16, Reg::R18, shape.hot);
                            a.muli(Reg::R18, Reg::R18, 64);
                            a.load(Reg::R4, Reg::R18, table);
                            a.addi(Reg::R4, Reg::R4, 1);
                            a.store(Reg::R4, Reg::R18, table);
                        }
                    },
                );
            });
            sync::barrier_wait(&mut a, bar, n as u64);
            a.halt();
            a.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_for_various_thread_counts() {
        for b in Benchmark::ALL {
            for n in [1, 2, 4, 8] {
                let w = b.build(n, Scale::Tiny, 1);
                assert_eq!(w.programs.len(), n, "{}", b.name());
                assert!(w.programs.iter().all(|p| !p.is_empty()), "{}", b.name());
            }
        }
    }

    #[test]
    fn names_and_suites_match_table3() {
        assert_eq!(Benchmark::ALL.len(), 16);
        let parsec = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == "PARSEC")
            .count();
        let splash = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == "SPLASH-2")
            .count();
        let stamp = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == "STAMP")
            .count();
        assert_eq!((parsec, splash, stamp), (5, 6, 5));
        assert_eq!(Benchmark::LuNonCont.name(), "lu (non-cont.)");
    }

    #[test]
    fn scale_factors_are_monotonic() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }

    #[test]
    fn lu_variants_differ_in_layout_only() {
        let cont = Benchmark::LuCont.build(4, Scale::Tiny, 1);
        let non = Benchmark::LuNonCont.build(4, Scale::Tiny, 1);
        // Same program shape, different address streams.
        assert_eq!(cont.programs.len(), non.programs.len());
        assert_ne!(cont.programs[1], non.programs[1]);
    }

    #[test]
    fn single_threaded_kernels_run_on_reference_vm() {
        use std::collections::HashMap;
        use tsocc_isa::refvm::run_ref;
        // Kernels without cross-thread waits must terminate single-
        // threaded on the reference interpreter.
        for b in [
            Benchmark::Blackscholes,
            Benchmark::Canneal,
            Benchmark::Raytrace,
            Benchmark::Ssca2,
        ] {
            let w = b.build(1, Scale::Tiny, 3);
            let mut mem = HashMap::new();
            run_ref(&w.programs[0], &mut mem, 2_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }
}
