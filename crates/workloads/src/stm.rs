//! A NOrec software transactional memory in TVM IR.
//!
//! The paper's STAMP workloads run over the NOrec STM (Dalessandro et
//! al., PPoPP 2010): no ownership records, one global sequence lock,
//! **value-based validation**, and a write log replayed at commit.
//! [`txn_execute`] emits the full NOrec protocol:
//!
//! 1. *Begin*: spin until the global sequence number is even, snapshot
//!    it.
//! 2. *Read phase*: optimistic reads, folded into a value summary.
//! 3. *Commit*: CAS the sequence lock from the snapshot to snapshot+1.
//!    On failure (a concurrent commit), **validate by value**: wait for
//!    an even sequence, re-execute the read phase, and compare the
//!    summaries. Unchanged values extend the snapshot and the CAS is
//!    retried; changed values abort and re-execute the transaction.
//! 4. *Write-back*: replay the write set while the lock is held, then
//!    release by publishing snapshot+2.
//!
//! Substitution note: NOrec validates each read-set entry
//! individually; folding the read set into a single sum can in
//! principle miss a conflict whose value changes cancel out. For the
//! synthetic monotonic-counter tables used by the STAMP kernels this
//! cannot happen (values only grow).
//!
//! Register conventions: `R21` snapshot, `R2` read summary, `R23..=R26`
//! transaction scratch, and the read closure must be deterministic
//! (restore any PRNG state it consumes, conventionally saved in `R19`).

use tsocc_isa::{Asm, Reg};

/// Emits one complete NOrec transaction.
///
/// `emit_reads(a, dest)` must emit the read phase, leaving a value
/// summary of the read set in `dest`; it is emitted twice (read phase
/// and validation) and must produce the same addresses both times.
/// `emit_writes(a)` emits the write set as plain stores; it runs with
/// the sequence lock held.
pub fn txn_execute<R, W>(a: &mut Asm, glb: u64, compute: u32, emit_reads: R, emit_writes: W)
where
    R: Fn(&mut Asm, Reg),
    W: FnOnce(&mut Asm),
{
    // -- begin: snapshot an even sequence number ------------------------
    let restart = a.new_label();
    a.bind(restart);
    let sample = a.new_label();
    a.bind(sample);
    a.load_abs(Reg::R21, glb);
    a.andi(Reg::R23, Reg::R21, 1);
    a.bne(Reg::R23, Reg::R0, sample);

    // -- optimistic read phase ------------------------------------------
    emit_reads(a, Reg::R2);
    a.delay(compute);

    // -- commit: acquire the sequence lock by CAS ------------------------
    let try_commit = a.new_label();
    let committed = a.new_label();
    a.bind(try_commit);
    a.addi(Reg::R23, Reg::R21, 1);
    a.cas(Reg::R24, Reg::R0, glb, Reg::R21, Reg::R23);
    a.beq(Reg::R24, Reg::R21, committed);

    // Someone committed since our snapshot: value-based validation.
    let revalidate = a.new_label();
    a.bind(revalidate);
    a.load_abs(Reg::R25, glb);
    a.andi(Reg::R26, Reg::R25, 1);
    a.bne(Reg::R26, Reg::R0, revalidate);
    a.mov(Reg::R21, Reg::R25); // extend the snapshot
    emit_reads(a, Reg::R26);
    let valid = a.new_label();
    a.beq(Reg::R26, Reg::R2, valid);
    // Values changed: abort and re-execute.
    a.rand_delay(64);
    a.jump(restart);
    a.bind(valid);
    a.jump(try_commit);

    // -- write-back under the lock, then release -------------------------
    a.bind(committed);
    emit_writes(a);
    a.addi(Reg::R25, Reg::R21, 2);
    a.store_abs(Reg::R25, glb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tsocc_isa::refvm::run_ref;

    #[test]
    fn txn_commits_functionally() {
        let glb = 0x1000u64;
        let data = 0x1040u64;
        let mut a = Asm::new();
        txn_execute(
            &mut a,
            glb,
            5,
            |a, dest| {
                a.load_abs(dest, data);
            },
            |a| {
                a.addi(Reg::R3, Reg::R2, 7);
                a.store_abs(Reg::R3, data);
            },
        );
        a.halt();
        let mut mem = HashMap::new();
        mem.insert(data, 10);
        run_ref(&a.finish(), &mut mem, 10_000).unwrap();
        assert_eq!(mem[&data], 17);
        assert_eq!(mem[&glb], 2, "sequence advanced by 2 per commit");
    }

    #[test]
    fn sequential_txns_advance_sequence() {
        let glb = 0x1000u64;
        let mut a = Asm::new();
        for _ in 0..3 {
            txn_execute(&mut a, glb, 0, |_, _| {}, |_| {});
        }
        a.halt();
        let mut mem = HashMap::new();
        run_ref(&a.finish(), &mut mem, 10_000).unwrap();
        assert_eq!(mem[&glb], 6);
    }

    #[test]
    fn locked_sequence_blocks_begin() {
        // With glb pre-set odd, the transaction must spin at begin and
        // run out of fuel.
        let glb = 0x1000u64;
        let mut a = Asm::new();
        txn_execute(&mut a, glb, 0, |_, _| {}, |_| {});
        a.halt();
        let mut mem = HashMap::new();
        mem.insert(glb, 1);
        assert!(run_ref(&a.finish(), &mut mem, 10_000).is_err());
    }
}
