#![warn(missing_docs)]

//! 2D-mesh on-chip network model (GARNET substitute).
//!
//! The paper models its interconnect with GARNET inside gem5 (Table 2:
//! 2D mesh, 4 rows, 16-byte flits). This crate reproduces the
//! protocol-relevant behaviour of that network:
//!
//! - XY dimension-ordered routing over a rows×cols mesh,
//! - per-hop router and link latency,
//! - per-link serialization at one flit per cycle, so a 5-flit data
//!   message occupies a link five times longer than a 1-flit control
//!   message and contention between messages sharing a link is modelled,
//! - three virtual networks (request / forward / response) so protocol
//!   deadlock freedom mirrors the usual Ruby vnet discipline,
//! - exact flit accounting: injected flits and flit-hops, the metric
//!   behind the paper's Figure 4 ("network traffic, total flits").
//!
//! Substitution note (DESIGN.md §2): GARNET models router microarchitecture
//! (VC allocation, switch arbitration) flit by flit. We model message
//! timing hop-by-hop with per-link busy tracking, which preserves
//! serialization and queueing delay — the first-order contention effects —
//! at a fraction of the simulation cost.
//!
//! # Examples
//!
//! ```
//! use tsocc_noc::{Mesh, MeshTopology, NocConfig, VNet};
//! use tsocc_sim::Cycle;
//!
//! let topo = MeshTopology::new(2, 2);
//! let mut mesh: Mesh<&'static str> = Mesh::new(topo, NocConfig::default());
//! mesh.send(Cycle::ZERO, 0, 3, VNet::Request, 1, "GetS");
//! // Walk time forward until the message pops out at router 3.
//! let mut delivered = Vec::new();
//! for t in 0..100 {
//!     delivered.extend(mesh.deliver(Cycle::new(t)));
//! }
//! assert_eq!(delivered, vec![(3, "GetS")]);
//! ```

mod mesh;
mod topology;

pub use mesh::{Mesh, NocConfig, NocStats};
pub use topology::MeshTopology;

/// Virtual network classes, mirroring the request/forward/response
/// message-class split used by directory protocols to avoid protocol
/// deadlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VNet {
    /// L1 → L2 requests (GetS/GetX/PUT).
    Request,
    /// L2 → L1 forwards/invalidations and broadcasts.
    Forward,
    /// Data and acknowledgement responses.
    Response,
}

impl VNet {
    /// All virtual networks, in index order.
    pub const ALL: [VNet; 3] = [VNet::Request, VNet::Forward, VNet::Response];

    /// Dense index for table lookups.
    pub const fn index(self) -> usize {
        match self {
            VNet::Request => 0,
            VNet::Forward => 1,
            VNet::Response => 2,
        }
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
