//! Mesh geometry and XY routing.

use std::fmt;

/// A rows×cols 2D mesh; routers are numbered row-major.
///
/// # Examples
///
/// ```
/// use tsocc_noc::MeshTopology;
///
/// let topo = MeshTopology::for_tiles(32); // the paper's 4x8 mesh
/// assert_eq!(topo.rows(), 4);
/// assert_eq!(topo.cols(), 8);
/// assert_eq!(topo.hops(0, 31), 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshTopology {
    rows: usize,
    cols: usize,
}

impl MeshTopology {
    /// Creates an explicit rows×cols mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        MeshTopology { rows, cols }
    }

    /// Chooses a near-square mesh for `n` tiles, preferring the paper's
    /// shapes: 16→4×4, 32→4×8, 64→8×8, 128→8×16.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_tiles(n: usize) -> Self {
        assert!(n > 0, "need at least one tile");
        // Largest power-of-two number of rows with rows <= sqrt(n) that
        // divides n; falls back to a single row for odd sizes.
        let mut rows = 1usize;
        let mut r = 1usize;
        while r * r <= n {
            if n.is_multiple_of(r) {
                rows = r;
            }
            r *= 2;
        }
        MeshTopology::new(rows, n / rows)
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Total routers.
    pub const fn nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// (row, col) of a router id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "router {node} out of range");
        (node / self.cols, node % self.cols)
    }

    /// Router id at (row, col).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// Manhattan hop count between two routers (0 when co-located).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// XY dimension-ordered route from `src` to `dst`, inclusive of both
    /// endpoints. Deterministic and deadlock-free.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        let mut path = Vec::with_capacity(self.hops(src, dst) + 1);
        let (mut r, mut c) = (sr, sc);
        path.push(self.node_at(r, c));
        // X first.
        while c != dc {
            c = if c < dc { c + 1 } else { c - 1 };
            path.push(self.node_at(r, c));
        }
        // Then Y.
        while r != dr {
            r = if r < dr { r + 1 } else { r - 1 };
            path.push(self.node_at(r, c));
        }
        path
    }

    /// The four corner routers (used to place memory controllers).
    pub fn corners(&self) -> [usize; 4] {
        [
            self.node_at(0, 0),
            self.node_at(0, self.cols - 1),
            self.node_at(self.rows - 1, 0),
            self.node_at(self.rows - 1, self.cols - 1),
        ]
    }
}

impl fmt::Display for MeshTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes() {
        assert_eq!(MeshTopology::for_tiles(16), MeshTopology::new(4, 4));
        assert_eq!(MeshTopology::for_tiles(32), MeshTopology::new(4, 8));
        assert_eq!(MeshTopology::for_tiles(64), MeshTopology::new(8, 8));
        assert_eq!(MeshTopology::for_tiles(128), MeshTopology::new(8, 16));
        assert_eq!(MeshTopology::for_tiles(1), MeshTopology::new(1, 1));
    }

    #[test]
    fn coords_roundtrip() {
        let t = MeshTopology::new(4, 8);
        for n in 0..t.nodes() {
            let (r, c) = t.coords(n);
            assert_eq!(t.node_at(r, c), n);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let t = MeshTopology::new(4, 8);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 7), 7);
        assert_eq!(t.hops(0, 31), 10); // (0,0) -> (3,7)
        assert_eq!(t.hops(31, 0), 10);
    }

    #[test]
    fn route_is_xy_and_contiguous() {
        let t = MeshTopology::new(4, 8);
        let path = t.route(0, 31);
        assert_eq!(path.len(), t.hops(0, 31) + 1);
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 31);
        // Every step moves exactly one hop.
        for w in path.windows(2) {
            assert_eq!(t.hops(w[0], w[1]), 1);
        }
        // X-first: column changes complete before row changes start.
        let cols: Vec<usize> = path.iter().map(|&n| t.coords(n).1).collect();
        let first_row_change = path
            .windows(2)
            .position(|w| t.coords(w[0]).0 != t.coords(w[1]).0);
        if let Some(i) = first_row_change {
            assert!(cols[i..].windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let t = MeshTopology::new(2, 2);
        assert_eq!(t.route(3, 3), vec![3]);
    }

    #[test]
    fn corners_are_distinct_for_nontrivial_mesh() {
        let t = MeshTopology::new(4, 8);
        let c = t.corners();
        assert_eq!(c, [0, 7, 24, 31]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_coords_panic() {
        let t = MeshTopology::new(2, 2);
        let _ = t.coords(4);
    }
}
