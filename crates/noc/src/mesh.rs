//! Message timing, link contention and flit accounting.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tsocc_sim::{Counter, Cycle};

use crate::topology::MeshTopology;
use crate::VNet;

/// Latency and sizing parameters of the mesh.
///
/// Defaults correspond to the paper's Table 2: 16-byte flits, one-cycle
/// links, one-cycle routers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Cycles spent in each router along the path.
    pub router_latency: u64,
    /// Cycles on each physical link, excluding serialization.
    pub link_latency: u64,
    /// Flit payload size in bytes (16 in the paper).
    pub flit_bytes: u32,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            router_latency: 1,
            link_latency: 1,
            flit_bytes: 16,
        }
    }
}

impl NocConfig {
    /// Number of flits for a message with `payload_bytes` of payload plus
    /// an 8-byte header, at least one flit.
    ///
    /// A control message (no payload) is 1 flit; a 64-byte data message is
    /// 5 flits at the default 16-byte flit size, exactly as in GARNET.
    pub fn flits_for_payload(&self, payload_bytes: u32) -> u32 {
        let total = payload_bytes + 8;
        total.div_ceil(self.flit_bytes).max(1)
    }

    /// Minimum cycles between injecting any message and its delivery,
    /// over every (src, dst) pair — the **conservative lookahead** of
    /// the parallel stepper: a message sent at cycle `t` can never be
    /// observed before `t + min_message_latency()`, so shards may
    /// advance that many cycles without exchanging messages.
    ///
    /// The minimum is local (src == dst) crossbar delivery, which takes
    /// `router_latency.max(1)` cycles; every multi-hop route costs at
    /// least one serialization cycle plus link and router latency on
    /// top. Always at least 1.
    pub fn min_message_latency(&self) -> u64 {
        self.router_latency.max(1)
    }
}

/// Traffic statistics, the basis of the paper's Figure 4.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages injected, per virtual network.
    pub messages: [Counter; 3],
    /// Flits injected (message count × message flits).
    pub flits_injected: Counter,
    /// Flit-hops: flits × links traversed (the traffic/energy metric).
    pub flit_hops: Counter,
    /// Total queueing delay suffered behind busy links, in cycles.
    pub contention_cycles: Counter,
}

impl NocStats {
    /// Total messages over all vnets.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|c| c.get()).sum()
    }
}

#[derive(Debug)]
struct Arrival<M> {
    at: Cycle,
    seq: u64,
    dst: usize,
    payload: M,
}

impl<M> PartialEq for Arrival<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Arrival<M> {}
impl<M> PartialOrd for Arrival<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Arrival<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The mesh network: injects messages, models per-link serialization and
/// delivers payloads to destination routers in deterministic order.
///
/// Generic over the payload type `M` so the coherence crates can ship
/// their own message enums without this crate knowing about them.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug)]
pub struct Mesh<M> {
    topo: MeshTopology,
    cfg: NocConfig,
    /// Busy-until time per directed link and vnet, flat-indexed by
    /// [`Mesh::link_id`]. Each router has at most four outgoing mesh
    /// links (one per direction), so the table is `nodes × 4 × vnets`
    /// entries — a direct index instead of hashing a 3-tuple per hop.
    link_busy: Vec<Cycle>,
    in_flight: BinaryHeap<Reverse<Arrival<M>>>,
    seq: u64,
    stats: NocStats,
}

/// Outgoing link directions of a mesh router, in dense-index order.
const LINK_DIRS: usize = 4;

impl<M> Mesh<M> {
    /// Creates an idle mesh.
    pub fn new(topo: MeshTopology, cfg: NocConfig) -> Self {
        Mesh {
            topo,
            cfg,
            link_busy: vec![Cycle::ZERO; topo.nodes() * LINK_DIRS * VNet::ALL.len()],
            in_flight: BinaryHeap::new(),
            seq: 0,
            stats: NocStats::default(),
        }
    }

    /// Dense index of the directed link `from → to` (adjacent routers)
    /// on `vnet`: the from-router's slot for the step's direction
    /// (0 east, 1 west, 2 south, 3 north).
    fn link_id(&self, from: usize, to: usize, vnet: VNet) -> usize {
        let cols = self.topo.cols();
        let dir = if to == from + 1 {
            0
        } else if to + 1 == from {
            1
        } else if to == from + cols {
            2
        } else {
            debug_assert_eq!(to + cols, from, "{from} -> {to} is not a mesh link");
            3
        };
        (from * LINK_DIRS + dir) * VNet::ALL.len() + vnet.index()
    }

    /// The mesh geometry.
    pub fn topology(&self) -> MeshTopology {
        self.topo
    }

    /// The latency configuration.
    pub fn config(&self) -> NocConfig {
        self.cfg
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// The conservative lookahead of this mesh: see
    /// [`NocConfig::min_message_latency`].
    pub fn lookahead(&self) -> u64 {
        self.cfg.min_message_latency()
    }

    /// Injects a message of `flits` flits at router `src` destined for
    /// router `dst` at time `now`. The message becomes visible to
    /// [`Mesh::deliver`] once its modelled latency has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range or `flits == 0`.
    pub fn send(&mut self, now: Cycle, src: usize, dst: usize, vnet: VNet, flits: u32, payload: M) {
        self.send_with_delay(now, src, dst, vnet, flits, 0, payload)
    }

    /// Like [`Mesh::send`], but the message arrives `extra_delay`
    /// cycles later than the modelled latency — the seam through which
    /// deterministic NoC fault injection adds jitter. The delay applies
    /// to the final arrival time only: link serialization (and thus
    /// contention seen by *other* messages) is unaffected, and because
    /// it can only add latency the conservative lookahead bound
    /// ([`NocConfig::min_message_latency`]) still holds.
    #[allow(clippy::too_many_arguments)]
    pub fn send_with_delay(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        vnet: VNet,
        flits: u32,
        extra_delay: u64,
        payload: M,
    ) {
        assert!(
            src < self.topo.nodes() && dst < self.topo.nodes(),
            "router out of range"
        );
        assert!(flits > 0, "messages carry at least one flit");
        self.stats.messages[vnet.index()].inc();
        self.stats.flits_injected.add(flits as u64);

        let mut t = now;
        if src == dst {
            // Local delivery through the router's crossbar only.
            t += self.cfg.router_latency.max(1);
        } else {
            // Walk the XY route inline (X first, then Y — the same hop
            // sequence `MeshTopology::route` materializes) so the hot
            // send path allocates nothing.
            self.stats
                .flit_hops
                .add(flits as u64 * self.topo.hops(src, dst) as u64);
            let (dr, dc) = self.topo.coords(dst);
            let (mut r, mut c) = self.topo.coords(src);
            let mut from = src;
            while (r, c) != (dr, dc) {
                if c != dc {
                    c = if c < dc { c + 1 } else { c - 1 };
                } else {
                    r = if r < dr { r + 1 } else { r - 1 };
                }
                let to = self.topo.node_at(r, c);
                let key = self.link_id(from, to, vnet);
                let free = self.link_busy[key];
                let start = t.max(free);
                self.stats.contention_cycles.add(start - t);
                // The link is serialized: it cannot accept the next
                // message until all flits of this one have left.
                let done = start + flits as u64;
                self.link_busy[key] = done;
                t = done + self.cfg.link_latency + self.cfg.router_latency;
                from = to;
            }
        }
        self.seq += 1;
        self.in_flight.push(Reverse(Arrival {
            at: t + extra_delay,
            seq: self.seq,
            dst,
            payload,
        }));
    }

    /// Drains every message whose arrival time is `<= now`, in arrival
    /// order (ties broken by injection order, so delivery is
    /// deterministic).
    pub fn deliver(&mut self, now: Cycle) -> Vec<(usize, M)> {
        let mut out = Vec::new();
        self.deliver_into(now, &mut out);
        out
    }

    /// Like [`Mesh::deliver`], but appends into a caller-provided
    /// buffer so the per-cycle run loop can reuse one allocation.
    pub fn deliver_into(&mut self, now: Cycle, out: &mut Vec<(usize, M)>) {
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.at > now {
                break;
            }
            let Reverse(arr) = self.in_flight.pop().expect("peeked");
            out.push((arr.dst, arr.payload));
        }
    }

    /// Whether any message is still in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Earliest pending arrival time, if any (lets the driver fast-forward
    /// through quiescent periods).
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.in_flight.peek().map(|Reverse(a)| a.at)
    }

    /// Number of messages still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Visits every in-flight message as `(arrival, dst, payload)`, in
    /// unspecified (heap) order — callers wanting determinism sort by
    /// arrival time. Used by hang diagnosis to snapshot the network.
    pub fn in_flight_msgs(&self) -> impl Iterator<Item = (Cycle, usize, &M)> {
        self.in_flight
            .iter()
            .map(|Reverse(a)| (a.at, a.dst, &a.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh<u32> {
        Mesh::new(MeshTopology::new(2, 4), NocConfig::default())
    }

    fn drain_all(m: &mut Mesh<u32>, horizon: u64) -> Vec<(u64, usize, u32)> {
        let mut got = Vec::new();
        for t in 0..horizon {
            for (dst, p) in m.deliver(Cycle::new(t)) {
                got.push((t, dst, p));
            }
        }
        got
    }

    #[test]
    fn flit_sizing_matches_paper() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.flits_for_payload(0), 1, "control message");
        assert_eq!(cfg.flits_for_payload(64), 5, "64B data message");
        assert_eq!(cfg.flits_for_payload(8), 1);
    }

    #[test]
    fn delivery_latency_scales_with_distance() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 1, 1); // 1 hop
        m.send(Cycle::ZERO, 0, 7, VNet::Response, 1, 2); // 4 hops
        let got = drain_all(&mut m, 100);
        let t1 = got.iter().find(|g| g.2 == 1).unwrap().0;
        let t2 = got.iter().find(|g| g.2 == 2).unwrap().0;
        assert!(t2 > t1, "longer route must take longer ({t1} vs {t2})");
    }

    #[test]
    fn local_delivery_is_fast_but_not_instant() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 3, 3, VNet::Request, 1, 9);
        assert!(m.deliver(Cycle::ZERO).is_empty());
        let got = drain_all(&mut m, 10);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 3);
    }

    #[test]
    fn serialization_delays_second_message() {
        let mut m = mesh();
        // Two 5-flit data messages over the same link, injected together.
        m.send(Cycle::ZERO, 0, 1, VNet::Response, 5, 1);
        m.send(Cycle::ZERO, 0, 1, VNet::Response, 5, 2);
        let got = drain_all(&mut m, 100);
        let t1 = got.iter().find(|g| g.2 == 1).unwrap().0;
        let t2 = got.iter().find(|g| g.2 == 2).unwrap().0;
        assert_eq!(
            t2 - t1,
            5,
            "second message waits out 5 flits of serialization"
        );
        assert!(m.stats().contention_cycles.get() >= 5);
    }

    #[test]
    fn vnets_do_not_contend_with_each_other() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 5, 1);
        m.send(Cycle::ZERO, 0, 1, VNet::Response, 5, 2);
        let got = drain_all(&mut m, 100);
        let t1 = got.iter().find(|g| g.2 == 1).unwrap().0;
        let t2 = got.iter().find(|g| g.2 == 2).unwrap().0;
        assert_eq!(t1, t2, "separate vnets have separate channel bandwidth");
    }

    #[test]
    fn flit_accounting() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 3, VNet::Request, 1, 1); // 3 hops, 1 flit
        m.send(Cycle::ZERO, 0, 1, VNet::Response, 5, 2); // 1 hop, 5 flits
        assert_eq!(m.stats().flits_injected.get(), 6);
        assert_eq!(m.stats().flit_hops.get(), 3 + 5);
        assert_eq!(m.stats().messages[VNet::Request.index()].get(), 1);
        assert_eq!(m.stats().messages[VNet::Response.index()].get(), 1);
        assert_eq!(m.stats().total_messages(), 2);
    }

    #[test]
    fn deterministic_tie_break_by_injection_order() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 1, 10);
        m.send(Cycle::ZERO, 2, 1, VNet::Request, 1, 20);
        let got = drain_all(&mut m, 100);
        assert_eq!(got.len(), 2);
        // Same latency model for both (1 hop); injection order breaks tie.
        assert_eq!(got[0].2, 10);
        assert_eq!(got[1].2, 20);
    }

    #[test]
    fn idle_tracking() {
        let mut m = mesh();
        assert!(m.is_idle());
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 1, 1);
        assert!(!m.is_idle());
        let next = m.next_arrival().unwrap();
        m.deliver(next);
        assert!(m.is_idle());
    }

    #[test]
    #[should_panic]
    fn zero_flit_message_panics() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 0, 1);
    }

    #[test]
    fn distinct_outgoing_links_do_not_contend() {
        // Router 1 of a 2x4 mesh has east (1->2), west (1->0) and south
        // (1->5) links; same-vnet messages over different directions
        // must not serialize against each other in the flat busy table.
        let mut m = mesh();
        m.send(Cycle::ZERO, 1, 2, VNet::Request, 5, 1);
        m.send(Cycle::ZERO, 1, 0, VNet::Request, 5, 2);
        m.send(Cycle::ZERO, 1, 5, VNet::Request, 5, 3);
        let got = drain_all(&mut m, 100);
        let times: Vec<u64> = [1, 2, 3]
            .iter()
            .map(|id| got.iter().find(|g| g.2 == *id).unwrap().0)
            .collect();
        assert_eq!(times[0], times[1]);
        assert_eq!(times[0], times[2]);
        assert_eq!(m.stats().contention_cycles.get(), 0);
    }

    #[test]
    fn inline_walk_matches_route_hops() {
        // Multi-hop timing must still follow the XY path: contention on
        // the first shared link delays a message even when the rest of
        // the routes diverge.
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 6, VNet::Request, 5, 1); // 0->1->2->6
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 5, 2); // 0->1
        let got = drain_all(&mut m, 100);
        let t2 = got.iter().find(|g| g.2 == 2).unwrap().0;
        // The second message waits out the first's 5 flits on link 0->1.
        assert!(m.stats().contention_cycles.get() >= 5, "{t2}");
    }

    #[test]
    fn no_arrival_beats_the_advertised_lookahead() {
        // The parallel stepper's correctness rests on this bound: every
        // delivery is at least `lookahead` cycles after its send, for
        // every (src, dst) pair including self-sends, under varied
        // latency configurations.
        for (router, link) in [(1u64, 1u64), (3, 0), (0, 2), (2, 5)] {
            let cfg = NocConfig {
                router_latency: router,
                link_latency: link,
                flit_bytes: 16,
            };
            let mut m: Mesh<u32> = Mesh::new(MeshTopology::new(2, 4), cfg);
            let la = m.lookahead();
            assert!(la >= 1);
            let mut id = 0;
            for src in 0..m.topology().nodes() {
                for dst in 0..m.topology().nodes() {
                    m.send(Cycle::new(17), src, dst, VNet::Request, 1, id);
                    id += 1;
                }
            }
            let first = m.next_arrival().unwrap();
            assert!(
                first.as_u64() >= 17 + la,
                "arrival at {first:?} beats lookahead {la} (router={router}, link={link})"
            );
        }
    }

    #[test]
    fn extra_delay_shifts_arrival_only() {
        let mut a = mesh();
        let mut b = mesh();
        a.send(Cycle::ZERO, 0, 3, VNet::Request, 1, 1);
        b.send_with_delay(Cycle::ZERO, 0, 3, VNet::Request, 1, 11, 1);
        let base = a.next_arrival().unwrap().as_u64();
        assert_eq!(b.next_arrival().unwrap().as_u64(), base + 11);
        // Link occupancy is identical: a trailing message on the same
        // route is not pushed back by the jitter.
        a.send(Cycle::ZERO, 0, 3, VNet::Request, 1, 2);
        b.send(Cycle::ZERO, 0, 3, VNet::Request, 1, 2);
        assert_eq!(
            a.stats().contention_cycles.get(),
            b.stats().contention_cycles.get()
        );
        assert_eq!(b.in_flight_len(), 2);
        // The trailing (undelayed) messages arrive at the same time in
        // both meshes.
        let second = |m: &Mesh<u32>| {
            m.in_flight_msgs()
                .filter(|(_, _, p)| **p == 2)
                .map(|(t, _, _)| t.as_u64())
                .next()
                .unwrap()
        };
        assert_eq!(second(&a), second(&b));
    }

    #[test]
    fn deliver_into_reuses_buffer() {
        let mut m = mesh();
        m.send(Cycle::ZERO, 0, 1, VNet::Request, 1, 7);
        let mut out = Vec::new();
        let at = m.next_arrival().unwrap();
        m.deliver_into(at, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
        assert!(m.is_idle());
    }
}
