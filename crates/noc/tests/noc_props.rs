//! Property tests of the mesh network: routing validity, message
//! conservation, flit accounting and FIFO ordering per channel.

use proptest::prelude::*;
use tsocc_noc::{Mesh, MeshTopology, NocConfig, VNet};
use tsocc_sim::Cycle;

fn drain(mesh: &mut Mesh<usize>) -> Vec<(u64, usize, usize)> {
    let mut out = Vec::new();
    let mut t = 0u64;
    while !mesh.is_idle() {
        t = mesh
            .next_arrival()
            .map(|c| c.as_u64())
            .unwrap_or(t + 1)
            .max(t);
        for (dst, id) in mesh.deliver(Cycle::new(t)) {
            out.push((t, dst, id));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_are_minimal_and_contiguous(
        rows in 1usize..6,
        cols in 1usize..6,
        pair in (0usize..36, 0usize..36),
    ) {
        let topo = MeshTopology::new(rows, cols);
        let n = topo.nodes();
        let (src, dst) = (pair.0 % n, pair.1 % n);
        let path = topo.route(src, dst);
        prop_assert_eq!(path.len(), topo.hops(src, dst) + 1, "minimal route");
        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        for w in path.windows(2) {
            prop_assert_eq!(topo.hops(w[0], w[1]), 1, "contiguous hops");
        }
    }

    #[test]
    fn every_message_is_delivered_exactly_once(
        sends in proptest::collection::vec((0usize..16, 0usize..16, 1u32..6), 1..120),
    ) {
        let topo = MeshTopology::for_tiles(16);
        let mut mesh: Mesh<usize> = Mesh::new(topo, NocConfig::default());
        for (i, (src, dst, flits)) in sends.iter().enumerate() {
            mesh.send(Cycle::new(i as u64), *src, *dst, VNet::Request, *flits, i);
        }
        let delivered = drain(&mut mesh);
        prop_assert_eq!(delivered.len(), sends.len());
        let mut ids: Vec<usize> = delivered.iter().map(|d| d.2).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..sends.len()).collect::<Vec<_>>());
        // Destinations match.
        for (_, dst, id) in &delivered {
            prop_assert_eq!(*dst, sends[*id].1);
        }
    }

    #[test]
    fn flit_accounting_is_exact(
        sends in proptest::collection::vec((0usize..9, 0usize..9, 1u32..6), 1..60),
    ) {
        let topo = MeshTopology::new(3, 3);
        let mut mesh: Mesh<usize> = Mesh::new(topo, NocConfig::default());
        let mut expect_injected = 0u64;
        let mut expect_hops = 0u64;
        for (i, (src, dst, flits)) in sends.iter().enumerate() {
            mesh.send(Cycle::ZERO, *src, *dst, VNet::Response, *flits, i);
            expect_injected += *flits as u64;
            expect_hops += *flits as u64 * topo.hops(*src, *dst) as u64;
        }
        drain(&mut mesh);
        prop_assert_eq!(mesh.stats().flits_injected.get(), expect_injected);
        prop_assert_eq!(mesh.stats().flit_hops.get(), expect_hops);
    }

    #[test]
    fn same_channel_messages_stay_fifo(
        count in 2usize..20,
        flits in 1u32..6,
    ) {
        // Messages injected in order on the same (src, dst, vnet) must
        // be delivered in order — the property protocol correctness
        // leans on (e.g. PutM before a later GetS from the same core).
        let topo = MeshTopology::for_tiles(8);
        let mut mesh: Mesh<usize> = Mesh::new(topo, NocConfig::default());
        for i in 0..count {
            mesh.send(Cycle::new(i as u64), 0, 7, VNet::Request, flits, i);
        }
        let delivered = drain(&mut mesh);
        let ids: Vec<usize> = delivered.iter().map(|d| d.2).collect();
        prop_assert_eq!(ids, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn latency_monotonic_in_distance(
        cols in 2usize..8,
    ) {
        // On an otherwise idle mesh, farther destinations take longer.
        let topo = MeshTopology::new(1, cols);
        let mut last = 0u64;
        for dst in 1..cols {
            let mut mesh: Mesh<usize> = Mesh::new(topo, NocConfig::default());
            mesh.send(Cycle::ZERO, 0, dst, VNet::Request, 1, 0);
            let t = drain(&mut mesh)[0].0;
            prop_assert!(t > last, "dst {dst}: {t} !> {last}");
            last = t;
        }
    }
}
