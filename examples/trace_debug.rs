//! Protocol tracing: watch every coherence message of a transaction.
//!
//! Enables the system's message trace and walks through the paper's
//! Figure 1 handshake, printing the full message flow — the tool used
//! to debug the protocol implementations in this repository.
//!
//! Run with: `cargo run --example trace_debug`

use tsocc::{System, SystemConfig};
use tsocc_isa::{Asm, Reg};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;

fn main() {
    let data = 0x8000u64;
    let flag = 0x8040u64;

    let mut producer = Asm::new();
    producer.movi(Reg::R1, 7);
    producer.store_abs(Reg::R1, data);
    producer.movi(Reg::R2, 1);
    producer.store_abs(Reg::R2, flag);
    producer.halt();

    let mut consumer = Asm::new();
    let spin = consumer.new_label();
    consumer.bind(spin);
    consumer.load_abs(Reg::R1, flag);
    consumer.beq(Reg::R1, Reg::R0, spin);
    consumer.load_abs(Reg::R2, data);
    consumer.halt();

    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::TsoCc(TsoCcConfig::realistic(12, 3)))
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![producer.finish(), consumer.finish()]);
    sys.set_trace(true);
    sys.run(1_000_000).expect("terminates");

    println!("== message trace: Figure 1 on TSO-CC-4-12-3 ==");
    for line in sys.trace().lines() {
        println!("{line}");
    }
    println!(
        "\n{} messages; consumer read data = {}",
        sys.trace().lines().len(),
        sys.core(1).thread().reg(Reg::R2)
    );
    println!("Look for: GetX grants to the producer, the consumer's GetS");
    println!("re-requests as its Shared flag copy expires, and the final");
    println!("Data response whose newer timestamp triggers the acquire sweep.");
}
