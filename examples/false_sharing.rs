//! False sharing: why lazy coherence wins (paper §5, the two `lu`
//! versions).
//!
//! Runs the blocked-LU kernel in its contiguous (no false sharing) and
//! non-contiguous (heavy false sharing) layouts under MESI and
//! TSO-CC-4-12-3, and prints the slowdown each protocol suffers from
//! false sharing. Under MESI every write to a falsely-shared line
//! invalidates the other cores' copies; under TSO-CC shared lines are
//! not eagerly invalidated, so reads keep hitting until the next
//! self-invalidation point — the paper's explanation for lu (non-cont.)
//! favouring TSO-CC.
//!
//! Run with: `cargo run --release --example false_sharing`

use tsocc::SystemConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

fn main() {
    let n = 8;
    let protocols = [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ];
    println!(
        "{:<16} {:>16} {:>18} {:>22}",
        "protocol", "lu (cont.)", "lu (non-cont.)", "false-sharing penalty"
    );
    for protocol in protocols {
        let mut cycles = Vec::new();
        for bench in [Benchmark::LuCont, Benchmark::LuNonCont] {
            let w = bench.build(n, Scale::Small, 7);
            let cfg = SystemConfig::builder()
                .cores(n)
                .protocol(protocol)
                .build()
                .expect("valid config");
            let stats = run_workload(&w, cfg).expect("kernel terminates");
            cycles.push(stats.cycles);
        }
        println!(
            "{:<16} {:>16} {:>18} {:>21.2}x",
            protocol.name(),
            cycles[0],
            cycles[1],
            cycles[1] as f64 / cycles[0] as f64
        );
    }
    println!("\nExpect the non-contiguous penalty to be smaller under TSO-CC than MESI.");
}
