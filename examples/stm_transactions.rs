//! Transactional synchronization over the NOrec STM (the paper's STAMP
//! workloads).
//!
//! Runs the vacation-shaped kernel — medium transactions over a shared
//! table, committed through a CAS-guarded global sequence lock — under
//! every evaluated protocol configuration, and prints the RMW latency
//! that drives the paper's Figure 8: TSO-CC services GetX requests to
//! shared lines without invalidation round trips, so commit CASes are
//! cheaper than under MESI.
//!
//! Run with: `cargo run --release --example stm_transactions`

use tsocc::SystemConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

fn main() {
    let n = 8;
    let w = Benchmark::Vacation.build(n, Scale::Small, 21);
    println!(
        "{:<18} {:>10} {:>12} {:>14} {:>12}",
        "config", "cycles", "flits", "rmw-latency", "selfinv"
    );
    let mut mesi_rmw = 0.0;
    for protocol in Protocol::paper_configs() {
        let cfg = SystemConfig::builder()
            .cores(n)
            .protocol(protocol)
            .build()
            .expect("valid config");
        let stats = run_workload(&w, cfg).expect("kernel terminates");
        let rmw = stats.rmw_latency.mean();
        if protocol.name() == "MESI" {
            mesi_rmw = rmw;
        }
        println!(
            "{:<18} {:>10} {:>12} {:>10.1} cyc {:>12}",
            protocol.name(),
            stats.cycles,
            stats.total_flits(),
            rmw,
            stats.l1.selfinv_total(),
        );
    }
    println!("\nMESI RMW latency baseline: {mesi_rmw:.1} cycles (compare the TSO-CC rows).");
}
