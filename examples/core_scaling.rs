//! Core-count scaling: the motivation behind the paper.
//!
//! Runs the fft kernel at 4, 8, 16 and 32 cores under MESI and
//! TSO-CC-4-12-3 and prints execution time and traffic, next to the
//! analytic coherence-storage cost at each size — the axis on which
//! TSO-CC's advantage compounds as CMPs grow.
//!
//! Run with: `cargo run --release --example core_scaling`

use tsocc::SystemConfig;
use tsocc_proto::StorageModel;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

fn main() {
    println!(
        "{:>6} {:<16} {:>10} {:>12} {:>14}",
        "cores", "protocol", "cycles", "flits", "coh-storage"
    );
    for n in [4usize, 8, 16, 32] {
        for protocol in [
            Protocol::Mesi,
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        ] {
            let w = Benchmark::Fft.build(n, Scale::Small, 5);
            let cfg = SystemConfig::builder()
                .cores(n)
                .protocol(protocol)
                .build()
                .expect("valid config");
            let stats = run_workload(&w, cfg).expect("kernel terminates");
            let model = StorageModel::paper(n);
            let bits = match protocol {
                Protocol::Mesi => model.mesi_bits(),
                Protocol::TsoCc(c) => model.tsocc_bits(&c),
                Protocol::MesiCoarse(_) => unreachable!("not part of this example's sweep"),
            };
            println!(
                "{:>6} {:<16} {:>10} {:>12} {:>11.2} MB",
                n,
                protocol.name(),
                stats.cycles,
                stats.total_flits(),
                StorageModel::to_mb(bits)
            );
        }
    }
    println!("\nExecution and traffic stay comparable while MESI's directory");
    println!("storage grows linearly per line and TSO-CC's logarithmically.");
}
