//! Quickstart: the paper's Figure 1 producer-consumer on TSO-CC.
//!
//! Builds a two-core system running the classic message-passing idiom
//! (write data, write flag / spin on flag, read data), runs it under
//! the best TSO-CC configuration, and prints the statistics the
//! evaluation is built from.
//!
//! Run with: `cargo run --example quickstart`

use tsocc::{System, SystemConfig};
use tsocc_isa::{Asm, Reg};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;

fn main() {
    let data = 0x8000u64;
    let flag = 0x8040u64; // a different cache line

    // Producer (the paper's proc A): a1 `data = 1`, a2 `flag = 1`.
    let mut producer = Asm::new();
    producer.movi(Reg::R1, 42);
    producer.store_abs(Reg::R1, data);
    producer.movi(Reg::R2, 1);
    producer.store_abs(Reg::R2, flag);
    producer.halt();

    // Consumer (proc B): b1 `while (flag == 0);`, b2 `r = data`.
    let mut consumer = Asm::new();
    let spin = consumer.new_label();
    consumer.bind(spin);
    consumer.load_abs(Reg::R1, flag);
    consumer.beq(Reg::R1, Reg::R0, spin);
    consumer.load_abs(Reg::R2, data);
    consumer.halt();

    let protocol = Protocol::TsoCc(TsoCcConfig::realistic(12, 3));
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(protocol)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![producer.finish(), consumer.finish()]);
    let stats = sys
        .run(1_000_000)
        .expect("the spin must terminate (write propagation)");

    let observed = sys.core(1).thread().reg(Reg::R2);
    println!("protocol            : {}", protocol.name());
    println!("consumer observed   : {observed} (must be 42 — TSO r->r ordering)");
    println!("execution cycles    : {}", stats.cycles);
    println!("network flits       : {}", stats.total_flits());
    println!("L1 accesses         : {}", stats.l1.accesses());
    println!(
        "self-invalidations  : {} events, {} Shared lines swept",
        stats.l1.selfinv_total(),
        stats.l1.selfinv_lines.get()
    );
    assert_eq!(observed, 42);
    println!("\nTSO held: the release write became visible and ordered the data write before it.");
}
