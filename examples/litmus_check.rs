//! Litmus-test verification (paper §4.3) in miniature.
//!
//! Runs the TSO litmus suite against the MESI baseline and the best
//! TSO-CC configuration, printing the outcome histograms. No forbidden
//! outcome may ever appear; the SB test should show its TSO-allowed
//! `[0, 0]` relaxation at least once, proving the write buffer really
//! reorders.
//!
//! Run with: `cargo run --release --example litmus_check`
//! (The full sweep over all seven configurations is
//! `cargo run --release -p tsocc-bench --bin litmus`.)

use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{litmus_suite, run_litmus};

fn main() {
    let protocols = [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ];
    let iters = 60;
    let mut all_passed = true;
    for protocol in protocols {
        println!("== {} ==", protocol.name());
        for test in litmus_suite() {
            let report = run_litmus(&test, protocol, iters, 0x5EED);
            let verdict = if report.passed() {
                "ok"
            } else {
                "FORBIDDEN OUTCOME"
            };
            all_passed &= report.passed();
            println!(
                "  {:<16} {:<18} outcomes: {}",
                test.name,
                verdict,
                report
                    .outcomes
                    .iter()
                    .map(|(k, v)| format!("{k:?}x{v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
    assert!(all_passed, "a forbidden outcome was observed");
    println!("\nAll litmus tests satisfied TSO.");
}
