//! Storage scaling (the paper's headline claim, Figure 2).
//!
//! Prints the analytic coherence-storage model for MESI's full sharing
//! vector versus TSO-CC's log-scaling metadata, from 8 to 512 cores —
//! beyond the paper's 128-core x axis to show the divergence.
//!
//! Run with: `cargo run --example storage_scaling`

use tsocc_proto::StorageModel;
use tsocc_proto::TsoCcConfig;

fn main() {
    let best = TsoCcConfig::realistic(12, 3);
    println!(
        "{:>6} {:>12} {:>16} {:>12}",
        "cores", "MESI (MB)", "TSO-CC-4-12-3", "reduction"
    );
    for n in [8, 16, 32, 64, 128, 256, 512] {
        let m = StorageModel::paper(n);
        println!(
            "{:>6} {:>12.2} {:>16.2} {:>11.0}%",
            n,
            StorageModel::to_mb(m.mesi_bits()),
            StorageModel::to_mb(m.tsocc_bits(&best)),
            100.0 * m.reduction_vs_mesi(&best)
        );
    }
    println!("\nMESI grows linearly per line (n-bit vector); TSO-CC grows with log2(n).");
    println!("Paper reference points: 38% reduction at 32 cores, 82% at 128 cores.");
}
