#![warn(missing_docs)]

//! Umbrella crate (`tsocc-repro`) for the TSO-CC reproduction
//! workspace.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; it re-exports the public API of every
//! workspace crate so examples and integration tests can reach the
//! whole system through one dependency.
//!
//! Start with [`tsocc`] (system assembly and configuration),
//! [`tsocc_protocols`] (the protocol registry handed to
//! [`tsocc::SystemConfig`]) and [`tsocc_workloads`] (benchmarks and
//! litmus tests). The evaluation harness, including the parallel sweep
//! engine, lives in [`tsocc_bench`]; the conformance campaign engine
//! (N-thread litmus generation, model-oracle checking, counterexample
//! shrinking) lives in [`tsocc_conform`]. Campaign orchestration — the
//! content-addressed result cache and the work-stealing job executor
//! behind the `orchestrate` bin — lives in [`tsocc_orch`].

pub use tsocc;
pub use tsocc_bench;
pub use tsocc_coherence;
pub use tsocc_conform;
pub use tsocc_cpu;
pub use tsocc_isa;
pub use tsocc_mem;
pub use tsocc_mesi;
pub use tsocc_mesi_coarse;
pub use tsocc_noc;
pub use tsocc_orch;
pub use tsocc_proto;
pub use tsocc_protocols;
pub use tsocc_sim;
pub use tsocc_workloads;
