//! Umbrella crate for the TSO-CC reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; it re-exports the public API of every workspace
//! crate so examples and integration tests can reach the whole system
//! through one dependency.
//!
//! Start with [`tsocc`] (system assembly and configuration) and
//! [`tsocc_workloads`] (benchmarks and litmus tests).

pub use tsocc;
pub use tsocc_coherence;
pub use tsocc_cpu;
pub use tsocc_isa;
pub use tsocc_mem;
pub use tsocc_mesi;
pub use tsocc_noc;
pub use tsocc_proto;
pub use tsocc_sim;
pub use tsocc_workloads;
