//! End-to-end conformance campaign acceptance tests — the repository's
//! CI gate for the verification surface the paper establishes in §4.3.
//!
//! Two directions:
//!
//! 1. **soundness of the machine**: a 3-thread campaign of ≥ 500
//!    generated programs with RMWs, run on MESI, the limited-pointer
//!    MESI-coarse directory and TSO-CC under randomized timing, reports
//!    zero violations of the TSO oracle;
//! 2. **soundness of the campaign**: with the oracle deliberately
//!    strengthened to sequential consistency (an injected fault — SC
//!    forbids behaviours the TSO machine legitimately exhibits), the
//!    engine catches violations and shrinks one to a ≤ 6-op reproducer.

use tsocc_conform::{op_count, run_campaign, CampaignOpts, GenConfig};
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::{enumerate, ModelMode};

#[test]
fn three_thread_rmw_campaign_is_violation_free_across_protocols() {
    let opts = CampaignOpts {
        seed: 0x5EED_CAFE,
        min_programs: 500,
        max_programs: 650, // leeway for skipped-as-too-large programs
        iters_per_program: 2,
        protocols: vec![
            Protocol::Mesi,
            // Two pointers over three threads: the third sharer always
            // overflows into the coarse vector, so the campaign covers
            // the fallback paths, not just exact-pointer mode.
            Protocol::MesiCoarse(MesiCoarseConfig::new(2, 2)),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        ],
        gen: GenConfig {
            threads: 3,
            min_ops: 2,
            max_ops: 5,
            locations: 4,
            rmws: true,
        },
        ..Default::default()
    };
    let report = run_campaign(&opts);
    assert!(
        report.programs_checked >= 500,
        "campaign floor not met: {} checked, {} skipped",
        report.programs_checked,
        report.programs_skipped
    );
    assert_eq!(
        report.violations_total,
        0,
        "conformance violations found:\n{}",
        report.summary()
    );
    // Two timing iterations per program per protocol (3 protocols).
    assert_eq!(report.sim_runs, report.programs_checked as u64 * 6);
    // The campaign really exercised RMWs: the generator stats are not
    // exposed, but every checked program's outcomes were enumerated, so
    // sanity-check the aggregate state-space volume instead.
    assert!(report.states_total > report.programs_checked as u64 * 10);
    assert!(
        report.observed_outcomes_total > 0
            && report.observed_outcomes_total <= report.allowed_outcomes_total
    );
    // Histograms partition the checked programs.
    assert_eq!(
        report.coverage_histogram.iter().sum::<u64>(),
        report.programs_checked as u64
    );
    assert_eq!(
        report.state_space_histogram.iter().sum::<u64>(),
        report.programs_checked as u64
    );
}

#[test]
fn injected_sc_oracle_violation_is_caught_and_shrunk() {
    // TSO-CC (and MESI with write buffering) legitimately reorders
    // store→load; judging the machine against the *SC* model makes
    // those executions "violations", exercising the catcher and the
    // shrinker on real simulator traces.
    let opts = CampaignOpts {
        seed: 0xBAD_04AC1E,
        min_programs: 60,
        max_programs: 200,
        iters_per_program: 4,
        protocols: vec![Protocol::TsoCc(TsoCcConfig::realistic(12, 3))],
        gen: GenConfig {
            threads: 3,
            min_ops: 2,
            max_ops: 4,
            locations: 2,
            rmws: true,
        },
        oracle: ModelMode::Sc,
        shrink_iters: 24,
        max_violations: 3,
        ..Default::default()
    };
    let report = run_campaign(&opts);
    assert!(
        report.violations_total > 0,
        "the SC-weakened oracle must flag TSO reorderings:\n{}",
        report.summary()
    );
    let best = report
        .violations
        .iter()
        .min_by_key(|v| op_count(&v.shrunk))
        .expect("at least one shrunk violation");
    assert!(
        op_count(&best.shrunk) <= 6,
        "shrinker left {} ops:\n{}",
        op_count(&best.shrunk),
        report.summary()
    );
    assert!(
        best.shrunk.len() <= 2,
        "a minimal TSO/SC gap needs 2 threads"
    );
    // The reproducers are genuinely SC-forbidden but TSO-allowed — i.e.
    // the machine was never actually wrong, the oracle was.
    for v in &report.violations {
        let Some(outcome) = v.outcome.as_ref() else {
            continue;
        };
        let sc = enumerate(&v.program, ModelMode::Sc, 1_000_000).unwrap();
        let tso = enumerate(&v.program, ModelMode::Tso, 1_000_000).unwrap();
        assert!(!sc.outcomes.contains(outcome));
        assert!(
            tso.outcomes.contains(outcome),
            "machine outcome must still be TSO-legal: {outcome:?}"
        );
    }
}
