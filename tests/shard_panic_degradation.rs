//! Graceful degradation of the sharded parallel stepper: an injected
//! shard-worker panic must be contained, and the run must re-execute
//! on the serial reference stepper from the entry snapshot — with
//! bit-identical results to a clean run and `RunStats::degraded`
//! recording the fallback.

use tsocc::{FaultPlan, RunStats, Stepper, StepperFault, System, SystemConfig};
use tsocc_mem::{Addr, LineAddr, LineData};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

fn run_point(
    protocol: Protocol,
    stepper: Stepper,
    faults: FaultPlan,
) -> (RunStats, Vec<(LineAddr, LineData)>) {
    let workload = Benchmark::LuCont.build(16, Scale::Tiny, 7);
    let mut cfg = SystemConfig::builder()
        .cores(16)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = 7;
    cfg.stepper = stepper;
    cfg.faults = faults;
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    let stats = sys.run(10_000_000).expect("run must complete");
    (stats, sys.memory_image())
}

#[test]
fn injected_shard_panic_degrades_to_reference_with_identical_stats() {
    let sharded = Stepper::ParallelShards { shards: 4 };
    for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::default())] {
        let (clean, clean_mem) = run_point(protocol, Stepper::Reference, FaultPlan::none());
        assert_eq!(clean.degraded, 0);

        let plan = FaultPlan {
            stepper: Some(StepperFault {
                shard: 0,
                at_cycle: 500,
            }),
            ..FaultPlan::none()
        };
        let (degraded, degraded_mem) = run_point(protocol, sharded, plan);
        assert_eq!(
            degraded.degraded,
            1,
            "fallback must be recorded on {}",
            protocol.name()
        );
        // `degraded` itself is excluded from PartialEq (host-side
        // bookkeeping, like `sched`), so this compares the full
        // simulation-visible stats.
        assert_eq!(degraded, clean, "stats must match on {}", protocol.name());
        assert_eq!(degraded_mem, clean_mem);
    }
}

#[test]
fn out_of_range_fault_shard_still_degrades() {
    // A fault aimed past the last shard clamps onto a real worker —
    // the plan can never silently miss.
    let plan = FaultPlan {
        stepper: Some(StepperFault {
            shard: 999,
            at_cycle: 500,
        }),
        ..FaultPlan::none()
    };
    let (clean, clean_mem) = run_point(Protocol::Mesi, Stepper::Reference, FaultPlan::none());
    let (degraded, degraded_mem) =
        run_point(Protocol::Mesi, Stepper::ParallelShards { shards: 4 }, plan);
    assert_eq!(degraded.degraded, 1);
    assert_eq!(degraded, clean);
    assert_eq!(degraded_mem, clean_mem);
}
