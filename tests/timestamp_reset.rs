//! Timestamp-reset and epoch-id machinery (§3.5) under stress: tiny
//! timestamp widths make the counters wrap every few writes, so resets,
//! epoch changes and clamping fire constantly while programs must still
//! observe TSO.

use tsocc::{RunStats, System, SystemConfig};
use tsocc_isa::{Asm, Program, Reg};
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;

fn tiny_ts(ts_bits: u32, wg_bits: u32) -> Protocol {
    Protocol::TsoCc(TsoCcConfig {
        write_ts: Some(TsParams {
            ts_bits,
            write_group_bits: wg_bits,
        }),
        ..TsoCcConfig::realistic(12, 3)
    })
}

fn writer_reader_pair(writes: u64) -> Vec<Program> {
    let data = 0x3000u64;
    let flag = 0x3040u64;
    // Writer: many writes to data (wrapping the timestamp counter), then
    // the flag release.
    let mut w = Asm::new();
    w.movi(Reg::R1, 0);
    let top = w.new_label();
    w.bind(top);
    w.addi(Reg::R2, Reg::R1, 100);
    w.store_abs(Reg::R2, data);
    w.addi(Reg::R1, Reg::R1, 1);
    w.blt_imm(Reg::R1, writes, top);
    w.movi(Reg::R3, 1);
    w.store_abs(Reg::R3, flag);
    w.halt();
    // Reader: spin on flag, then the data read must see the last write.
    let mut r = Asm::new();
    let spin = r.new_label();
    r.bind(spin);
    r.load_abs(Reg::R1, flag);
    r.beq(Reg::R1, Reg::R0, spin);
    r.load_abs(Reg::R2, data);
    r.halt();
    vec![w.finish(), r.finish()]
}

fn run(protocol: Protocol, programs: Vec<Program>) -> (System, RunStats) {
    let cfg = SystemConfig::builder()
        .small()
        .cores(programs.len().max(2))
        .protocol(protocol)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, programs);
    let stats = sys.run(50_000_000).expect("terminates under resets");
    (sys, stats)
}

#[test]
fn resets_fire_and_ordering_holds() {
    // 4-bit timestamps, group size 1: a reset every 14 writes. 300
    // writes force ~20 resets and several 3-bit epoch wraparounds.
    let (sys, stats) = run(tiny_ts(4, 0), writer_reader_pair(300));
    assert!(
        stats.l1.ts_resets.get() >= 10,
        "expected many timestamp resets, saw {}",
        stats.l1.ts_resets.get()
    );
    assert_eq!(
        sys.core(1).thread().reg(Reg::R2),
        100 + 300 - 1,
        "reader must observe the final data value after the release"
    );
}

#[test]
fn grouped_timestamps_reset_less_often() {
    let (_, fine) = run(tiny_ts(4, 0), writer_reader_pair(240));
    let (_, grouped) = run(tiny_ts(4, 3), writer_reader_pair(240));
    assert!(
        grouped.l1.ts_resets.get() * 4 <= fine.l1.ts_resets.get(),
        "8-write groups must reset ~8x less: fine={} grouped={}",
        fine.l1.ts_resets.get(),
        grouped.l1.ts_resets.get()
    );
}

#[test]
fn epoch_wraparound_does_not_break_message_passing() {
    // 3-bit epochs wrap every 8 resets; run enough writes to wrap the
    // epoch id itself several times.
    let (sys, stats) = run(tiny_ts(4, 0), writer_reader_pair(1200));
    assert!(stats.l1.ts_resets.get() >= 60);
    assert_eq!(sys.core(1).thread().reg(Reg::R2), 100 + 1200 - 1);
}

#[test]
fn reset_broadcast_traffic_is_accounted() {
    let (_, stats) = run(tiny_ts(4, 0), writer_reader_pair(200));
    // Each reset broadcasts to every other L1 and all L2 tiles; the
    // messages must appear in the network statistics (they ride the
    // forward vnet).
    assert!(stats.noc.messages[tsocc_noc::VNet::Forward.index()].get() > 0);
}

#[test]
fn producer_consumer_stream_under_constant_resets() {
    // A flag-handshake stream where every item write can hit a reset
    // boundary; values must arrive intact and in order.
    let items = 40u64;
    let slots = 0x4000u64; // line per item: [data, flag]
    let mut producer = Asm::new();
    producer.movi(Reg::R1, 0);
    let top = producer.new_label();
    producer.bind(top);
    producer.muli(Reg::R17, Reg::R1, 64);
    producer.addi(Reg::R2, Reg::R1, 1000);
    producer.store(Reg::R2, Reg::R17, slots);
    producer.movi(Reg::R3, 1);
    producer.store(Reg::R3, Reg::R17, slots + 8);
    producer.addi(Reg::R1, Reg::R1, 1);
    producer.blt_imm(Reg::R1, items, top);
    producer.halt();

    let mut consumer = Asm::new();
    consumer.movi(Reg::R1, 0);
    consumer.movi(Reg::R5, 0);
    let top = consumer.new_label();
    consumer.bind(top);
    consumer.muli(Reg::R17, Reg::R1, 64);
    let spin = consumer.new_label();
    consumer.bind(spin);
    consumer.load(Reg::R3, Reg::R17, slots + 8);
    consumer.beq(Reg::R3, Reg::R0, spin);
    consumer.load(Reg::R2, Reg::R17, slots);
    consumer.add(Reg::R5, Reg::R5, Reg::R2);
    consumer.addi(Reg::R1, Reg::R1, 1);
    consumer.blt_imm(Reg::R1, items, top);
    consumer.halt();

    let (sys, _) = run(tiny_ts(4, 2), vec![producer.finish(), consumer.finish()]);
    let expected: u64 = (0..items).map(|i| i + 1000).sum();
    assert_eq!(sys.core(1).thread().reg(Reg::R5), expected);
}
