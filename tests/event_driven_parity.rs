//! The event-driven scheduler's headline contract: for every point of
//! the sweep matrix, jumping simulated time over idle cycles must
//! produce **bit-identical** results to the cycle-by-cycle reference
//! stepper — the full [`RunStats`] (cycles, messages, flits, flit-hops,
//! every histogram and counter) and the final DRAM image — while
//! executing strictly fewer host steps.
//!
//! [`RunStats`]: tsocc::RunStats

use tsocc::{RunStats, Stepper, System, SystemConfig};
use tsocc_bench::sweep::SweepPoint;
use tsocc_mem::{Addr, LineAddr, LineData};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

/// The `BENCH_sweep.json` base seed (`SweepOpts::default().seed`).
const BASE_SEED: u64 = 0xC0FFEE;

struct Outcome {
    stats: RunStats,
    memory: Vec<(LineAddr, LineData)>,
    host_steps: u64,
}

/// Runs one sweep point exactly the way the sweep engine does (same
/// per-point seed derivation, config and cycle budget), under the given
/// stepper, capturing the final memory image as well.
fn run_point(point: &SweepPoint, stepper: Stepper) -> Outcome {
    let seed = point.seed(BASE_SEED);
    let workload = point.bench.build(point.n_cores, point.scale, seed);
    let mut cfg = SystemConfig::builder()
        .cores(point.n_cores)
        .protocol(point.protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    cfg.stepper = stepper;
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    let stats = sys.run(200_000_000).unwrap_or_else(|e| {
        panic!(
            "{} on {} x{} ({stepper:?}): {e}",
            point.bench.name(),
            point.protocol.name(),
            point.n_cores
        )
    });
    Outcome {
        stats,
        memory: sys.memory_image(),
        host_steps: sys.steps_executed(),
    }
}

fn assert_point_parity(point: &SweepPoint) {
    let event = run_point(point, Stepper::EventDriven);
    let reference = run_point(point, Stepper::Reference);
    let label = format!(
        "{}/{}/x{}",
        point.bench.name(),
        point.protocol.name(),
        point.n_cores
    );
    assert_eq!(
        event.stats, reference.stats,
        "{label}: RunStats diverge between steppers"
    );
    assert_eq!(
        event.memory, reference.memory,
        "{label}: final memory image diverges between steppers"
    );
    assert!(
        event.host_steps < reference.host_steps,
        "{label}: event-driven ran {} steps, reference {} — no idle cycles skipped",
        event.host_steps,
        reference.host_steps
    );
}

/// The exact `BENCH_sweep.json` matrix: fft × all 9 sweep protocol
/// configurations (7 paper configs + 2 MESI-coarse directory points) ×
/// {2, 4, 8} cores at Small scale.
#[test]
fn sweep_matrix_is_bit_identical_across_steppers() {
    let mut checked = 0;
    for n_cores in [2usize, 4, 8] {
        for protocol in Protocol::sweep_configs() {
            let point = SweepPoint {
                bench: Benchmark::Fft,
                protocol,
                n_cores,
                scale: Scale::Small,
            };
            assert_point_parity(&point);
            checked += 1;
        }
    }
    assert_eq!(checked, 27, "the sweep matrix has 27 points");
}

/// Broader workload coverage at Tiny scale: every benchmark of the
/// paper's Table 3 under both a MESI and a TSO-CC machine.
#[test]
fn every_benchmark_is_bit_identical_across_steppers() {
    for bench in Benchmark::ALL {
        for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::default())] {
            let point = SweepPoint {
                bench,
                protocol,
                n_cores: 4,
                scale: Scale::Tiny,
            };
            assert_point_parity(&point);
        }
    }
}
