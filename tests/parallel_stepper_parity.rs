//! The sharded parallel stepper's headline contract: for any worker
//! count, [`Stepper::ParallelShards`] must produce **bit-identical**
//! results to the cycle-by-cycle reference stepper — the full
//! [`RunStats`] (cycles, messages, flits, flit-hops, every histogram
//! and counter) and the final DRAM image — at the larger machine sizes
//! the conservative windows exist for (16, 32 and 128 cores), across
//! all three protocol families, including error outcomes (timeouts
//! must fire at the same cycle).
//!
//! [`RunStats`]: tsocc::RunStats

use tsocc::{RunError, RunStats, Stepper, System, SystemConfig};
use tsocc_bench::sweep::SweepPoint;
use tsocc_mem::{Addr, LineAddr, LineData};
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

/// The `BENCH_sweep.json` base seed (`SweepOpts::default().seed`).
const BASE_SEED: u64 = 0xC0FFEE;

struct Outcome {
    stats: RunStats,
    memory: Vec<(LineAddr, LineData)>,
}

/// Runs one sweep point exactly the way the sweep engine does, under
/// the given stepper, capturing the final memory image as well.
fn run_point(point: &SweepPoint, stepper: Stepper, max_cycles: u64) -> Outcome {
    let seed = point.seed(BASE_SEED);
    let workload = point.bench.build(point.n_cores, point.scale, seed);
    let mut cfg = SystemConfig::builder()
        .cores(point.n_cores)
        .protocol(point.protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    cfg.stepper = stepper;
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    let stats = sys.run(max_cycles).unwrap_or_else(|e| {
        panic!(
            "{} on {} x{} ({stepper:?}): {e}",
            point.bench.name(),
            point.protocol.name(),
            point.n_cores
        )
    });
    Outcome {
        stats,
        memory: sys.memory_image(),
    }
}

fn assert_point_parity(point: &SweepPoint, shards: usize) {
    let parallel = run_point(point, Stepper::ParallelShards { shards }, 200_000_000);
    let reference = run_point(point, Stepper::Reference, 200_000_000);
    let label = format!(
        "{}/{}/x{} shards={shards}",
        point.bench.name(),
        point.protocol.name(),
        point.n_cores
    );
    assert_eq!(
        parallel.stats, reference.stats,
        "{label}: RunStats diverge between steppers"
    );
    assert_eq!(
        parallel.memory, reference.memory,
        "{label}: final memory image diverges between steppers"
    );
}

/// The satellite pin: 16 and 32 cores, all three protocol families
/// (full-vector MESI, coarse-directory MESI, TSO-CC), full stats +
/// memory-image equality. Shard counts deliberately include an uneven
/// split (5 does not divide 16) and one exceeding the memory-controller
/// count.
#[test]
fn parallel_stepper_matches_reference_at_16_and_32_cores() {
    let protocols = [
        Protocol::Mesi,
        Protocol::MesiCoarse(MesiCoarseConfig::default()),
        Protocol::TsoCc(TsoCcConfig::default()),
    ];
    for &(n_cores, scale, shards) in &[(16, Scale::Small, 5), (32, Scale::Tiny, 3)] {
        for protocol in protocols {
            let point = SweepPoint {
                bench: Benchmark::Fft,
                protocol,
                n_cores,
                scale,
            };
            assert_point_parity(&point, shards);
        }
    }
}

/// The 128-core climb: the largest machine in the sweep, all three
/// protocol families. Full-vector MESI at 128 cores is the boundary
/// configuration — its u128 sharer vector is exactly full, and the
/// machine runs two-banked L2 interleaving (`l2_banks = 2`) on the
/// non-square 8×16 mesh, so this leg pins the sharded stepper against
/// the reference on every geometry feature this size introduces.
#[test]
fn parallel_stepper_matches_reference_at_128_cores() {
    let protocols = [
        Protocol::Mesi,
        Protocol::MesiCoarse(MesiCoarseConfig::default()),
        Protocol::TsoCc(TsoCcConfig::default()),
    ];
    for protocol in protocols {
        let point = SweepPoint {
            bench: Benchmark::Fft,
            protocol,
            n_cores: 128,
            scale: Scale::Tiny,
        };
        // 7 does not divide 128: shard sizes 19×6 + 14.
        assert_point_parity(&point, 7);
    }
}

/// Multi-cycle windows: with `router_latency = 3` the conservative
/// lookahead lets every window span three cycles, so workers batch
/// several cycles between barriers — the window math itself is what
/// this leg stresses.
#[test]
fn multi_cycle_windows_are_bit_identical() {
    let run = |stepper: Stepper| {
        let workload = Benchmark::Fft.build(8, Scale::Tiny, 7);
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(8)
            .protocol(Protocol::Mesi)
            .build()
            .expect("valid config");
        cfg.noc.router_latency = 3;
        cfg.stepper = stepper;
        let mut sys = System::new(cfg, workload.programs.clone());
        for &(addr, value) in &workload.init {
            sys.write_word(Addr::new(addr), value);
        }
        let stats = sys.run(50_000_000).expect("run fails");
        (stats, sys.memory_image())
    };
    let reference = run(Stepper::Reference);
    for shards in [2, 4, 8] {
        let parallel = run(Stepper::ParallelShards { shards });
        assert_eq!(parallel.0, reference.0, "shards={shards}");
        assert_eq!(parallel.1, reference.1, "shards={shards}");
    }
}

/// Worker counts beyond the tile count clamp; `0` auto-sizes; `1`
/// falls back to the serial scheduler — all still bit-identical.
#[test]
fn degenerate_shard_counts_fall_back_or_clamp() {
    let run = |stepper: Stepper| {
        let workload = Benchmark::Radix.build(4, Scale::Tiny, 3);
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(4)
            .protocol(Protocol::TsoCc(TsoCcConfig::default()))
            .build()
            .expect("valid config");
        cfg.stepper = stepper;
        let mut sys = System::new(cfg, workload.programs.clone());
        for &(addr, value) in &workload.init {
            sys.write_word(Addr::new(addr), value);
        }
        let stats = sys.run(50_000_000).expect("run fails");
        (stats, sys.memory_image())
    };
    let reference = run(Stepper::Reference);
    for shards in [0, 1, 2, 64] {
        let parallel = run(Stepper::ParallelShards { shards });
        assert_eq!(parallel.0, reference.0, "shards={shards}");
        assert_eq!(parallel.1, reference.1, "shards={shards}");
    }
    // The resolution the run loop applies is public and predictable:
    // serial steppers are always one worker, `0` auto-sizes to the
    // host's available parallelism, and every request clamps to the
    // tile count.
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert_eq!(Stepper::parallel().effective_shards(4), auto.min(4));
    assert_eq!(Stepper::ParallelShards { shards: 2 }.effective_shards(4), 2);
    assert_eq!(
        Stepper::ParallelShards { shards: 64 }.effective_shards(4),
        4
    );
    assert_eq!(
        Stepper::ParallelShards { shards: 64 }.effective_shards(128),
        64
    );
    assert_eq!(Stepper::EventDriven.effective_shards(4), 1);
    assert_eq!(Stepper::Reference.effective_shards(4), 1);
}

/// Error outcomes are part of the bit-identical contract: a cycle
/// budget too small for the workload must time out identically (the
/// parallel loop caps its windows at the budget, never overshooting).
#[test]
fn timeouts_fire_identically_across_steppers() {
    let run = |stepper: Stepper| {
        let workload = Benchmark::Fft.build(8, Scale::Small, 11);
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(8)
            .protocol(Protocol::Mesi)
            .build()
            .expect("valid config");
        cfg.stepper = stepper;
        let mut sys = System::new(cfg, workload.programs.clone());
        for &(addr, value) in &workload.init {
            sys.write_word(Addr::new(addr), value);
        }
        sys.run(2_000)
    };
    let reference = run(Stepper::Reference);
    assert_eq!(
        reference,
        Err(RunError::Timeout { max_cycles: 2_000 }),
        "budget chosen to be insufficient"
    );
    assert_eq!(run(Stepper::ParallelShards { shards: 4 }), reference);
}
