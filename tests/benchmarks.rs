//! Cross-crate integration: the Table 3 benchmark suite on the full
//! Table 2 machine shape, determinism, and protocol-differentiating
//! sanity properties.

use tsocc::SystemConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

#[test]
fn suite_completes_on_eight_core_table2_machine() {
    for bench in Benchmark::ALL {
        let w = bench.build(8, Scale::Tiny, 13);
        for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::default())] {
            let cfg = SystemConfig::builder()
                .cores(8)
                .protocol(protocol)
                .build()
                .expect("valid config");
            let stats = run_workload(&w, cfg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), protocol.name()));
            assert!(stats.cycles > 0);
            assert!(stats.instructions > 0);
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let w = Benchmark::Intruder.build(4, Scale::Tiny, 17);
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(9, 3)),
    ] {
        let cfg = SystemConfig::builder()
            .small()
            .cores(4)
            .protocol(protocol)
            .build()
            .expect("valid config");
        let a = run_workload(&w, cfg.clone()).unwrap();
        let b = run_workload(&w, cfg).unwrap();
        assert_eq!(a.cycles, b.cycles, "{}", protocol.name());
        assert_eq!(a.total_flits(), b.total_flits());
        assert_eq!(a.l1.selfinv_total(), b.l1.selfinv_total());
        assert_eq!(a.instructions, b.instructions);
    }
}

#[test]
fn tsocc_sharedro_serves_read_only_data() {
    // raytrace's scene is read-only: under TSO-CC most scene reads must
    // end up as SharedRO hits (the Figure 6 pattern).
    let w = Benchmark::Raytrace.build(4, Scale::Small, 3);
    let cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::TsoCc(TsoCcConfig::realistic(12, 3)))
        .build()
        .expect("valid config");
    let stats = run_workload(&w, cfg).unwrap();
    assert!(
        stats.l1.read_hit_sharedro.get() > stats.l1.read_miss_shared.get(),
        "SharedRO hits {} should dominate shared expiry misses {}",
        stats.l1.read_hit_sharedro.get(),
        stats.l1.read_miss_shared.get()
    );
    assert!(stats.l1.read_hit_sharedro.get() > 0);
}

#[test]
fn mesi_reports_no_tsocc_specific_events() {
    let w = Benchmark::Fft.build(4, Scale::Tiny, 5);
    let cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let stats = run_workload(&w, cfg).unwrap();
    assert_eq!(stats.l1.selfinv_total(), 0);
    assert_eq!(stats.l1.read_hit_sharedro.get(), 0);
    assert_eq!(stats.l2.decays.get(), 0);
    assert_eq!(stats.l1.ts_resets.get(), 0);
}

#[test]
fn cc_shared_to_l2_never_hits_shared_lines() {
    let w = Benchmark::LuCont.build(4, Scale::Tiny, 5);
    let cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()))
        .build()
        .expect("valid config");
    let stats = run_workload(&w, cfg).unwrap();
    assert_eq!(
        stats.l1.read_hit_shared.get(),
        0,
        "CC-shared-to-L2 must never hit Shared lines in the L1"
    );
}

#[test]
fn shared_hits_are_bounded_by_access_counter() {
    // Total Shared hits can be at most max_acc times the number of
    // Shared-line acquisitions (misses that installed Shared lines).
    let w = Benchmark::X264.build(4, Scale::Small, 5);
    let cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::TsoCc(TsoCcConfig::realistic(12, 3)))
        .build()
        .expect("valid config");
    let stats = run_workload(&w, cfg).unwrap();
    let installs = stats.l1.read_misses() + stats.l1.write_misses();
    assert!(
        stats.l1.read_hit_shared.get() <= 16 * installs.max(1),
        "shared hits {} exceed the 16-per-install budget ({} installs)",
        stats.l1.read_hit_shared.get(),
        installs
    );
}

#[test]
fn false_sharing_hurts_tsocc_less_than_mesi() {
    // The paper's lu comparison (§5): the non-contiguous layout's
    // penalty relative to the contiguous one must be no worse under
    // TSO-CC than under MESI.
    let n = 8;
    let mut penalty = Vec::new();
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        let cfg = SystemConfig::builder()
            .cores(n)
            .protocol(protocol)
            .build()
            .expect("valid config");
        let cont = run_workload(&Benchmark::LuCont.build(n, Scale::Small, 7), cfg.clone()).unwrap();
        let non = run_workload(&Benchmark::LuNonCont.build(n, Scale::Small, 7), cfg).unwrap();
        penalty.push(non.cycles as f64 / cont.cycles as f64);
    }
    assert!(
        penalty[1] <= penalty[0] * 1.05,
        "TSO-CC false-sharing penalty {:.3} should not exceed MESI's {:.3}",
        penalty[1],
        penalty[0]
    );
}

#[test]
fn decay_transitions_occur_on_read_mostly_data() {
    let w = Benchmark::WaterNsq.build(4, Scale::Small, 9);
    let cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::TsoCc(TsoCcConfig::realistic(12, 0)))
        .build()
        .expect("valid config");
    let stats = run_workload(&w, cfg).unwrap();
    // decay needs enough writes; water's force phase supplies them.
    assert!(
        stats.l2.decays.get() > 0 || stats.l1.read_hit_sharedro.get() > 0,
        "expected Shared->SharedRO decay activity"
    );
}
