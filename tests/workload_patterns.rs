//! Validates that each synthetic kernel actually produces the sharing
//! pattern DESIGN.md §3 claims for it — the property that makes the
//! Figure 3–9 comparisons meaningful.

use tsocc::{RunStats, SystemConfig};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

fn run(bench: Benchmark, protocol: Protocol) -> RunStats {
    let n = 8;
    let w = bench.build(n, Scale::Small, 23);
    let cfg = SystemConfig::builder()
        .cores(n)
        .protocol(protocol)
        .build()
        .expect("valid config");
    run_workload(&w, cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

fn tsocc() -> Protocol {
    Protocol::TsoCc(TsoCcConfig::realistic(12, 3))
}

#[test]
fn blackscholes_is_compute_dominated_with_high_hit_rate() {
    let s = run(Benchmark::Blackscholes, tsocc());
    assert!(
        s.l1_miss_rate() < 0.10,
        "embarrassingly parallel kernel must hit nearly always ({:.3})",
        s.l1_miss_rate()
    );
}

#[test]
fn canneal_is_write_miss_dominated() {
    let s = run(Benchmark::Canneal, tsocc());
    assert!(
        s.l1.write_misses() + s.l1.rmw_miss.get() > s.l1.read_misses(),
        "migratory swap kernel: write/RMW misses {}+{} must dominate read misses {}",
        s.l1.write_misses(),
        s.l1.rmw_miss.get(),
        s.l1.read_misses()
    );
}

#[test]
fn raytrace_reads_are_sharedro_dominated_under_tsocc() {
    let s = run(Benchmark::Raytrace, tsocc());
    assert!(
        s.l1.read_hit_sharedro.get() > s.l1.read_hit_shared.get(),
        "read-only scene must be served from SharedRO ({} vs {})",
        s.l1.read_hit_sharedro.get(),
        s.l1.read_hit_shared.get()
    );
}

#[test]
fn lu_noncont_false_shares_lines_under_mesi() {
    // Under MESI, false sharing shows up as write misses to Shared
    // lines (upgrades that ping-pong).
    let cont = run(Benchmark::LuCont, Protocol::Mesi);
    let non = run(Benchmark::LuNonCont, Protocol::Mesi);
    assert!(
        non.l1.write_miss_shared.get() > 2 * cont.l1.write_miss_shared.get(),
        "interleaved layout must multiply upgrade misses ({} vs {})",
        non.l1.write_miss_shared.get(),
        cont.l1.write_miss_shared.get()
    );
}

#[test]
fn stamp_kernels_exercise_rmw_commits() {
    for b in [Benchmark::Intruder, Benchmark::Ssca2, Benchmark::Vacation] {
        let s = run(b, tsocc());
        assert!(
            s.rmw_latency.count() > 0,
            "{}: NOrec commits must CAS the sequence lock",
            b.name()
        );
    }
}

#[test]
fn x264_spins_produce_shared_expiry_misses_under_tsocc() {
    let s = run(Benchmark::X264, tsocc());
    assert!(
        s.l1.read_miss_shared.get() > 0,
        "wavefront spins must exhaust the Shared access budget"
    );
}

#[test]
fn barrier_kernels_issue_rmws_on_every_protocol() {
    for protocol in [Protocol::Mesi, tsocc()] {
        let s = run(Benchmark::Fft, protocol);
        assert!(
            s.rmw_latency.count() > 0 || s.l1.rmw_hit.get() > 0,
            "{}: barriers use fetch-add arrivals",
            protocol.name()
        );
    }
}

#[test]
fn protocols_agree_on_instruction_counts_for_data_independent_kernels() {
    // blackscholes' per-thread work is data-independent; only the final
    // barrier's spin iterations (and which thread arrives last) vary
    // with protocol timing, so instruction counts agree within a small
    // tolerance.
    let a = run(Benchmark::Blackscholes, Protocol::Mesi).instructions as f64;
    let b = run(Benchmark::Blackscholes, tsocc()).instructions as f64;
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.02, "instruction counts diverged: {a} vs {b}");
}

#[test]
fn dedup_pipeline_forwards_every_item() {
    // The pipeline's correctness is data-dependent: a dropped handoff
    // would deadlock (flag never set) rather than finish.
    for protocol in [Protocol::Mesi, tsocc()] {
        let s = run(Benchmark::Dedup, protocol);
        assert!(s.cycles > 0, "{}", protocol.name());
    }
}
