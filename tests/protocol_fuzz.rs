//! Randomized protocol exploration — the closest practical analogue of
//! the paper's "we model checked the protocol for race conditions and
//! deadlocks" (§4.3).
//!
//! Each scenario generates random per-core programs (loads, stores,
//! RMWs, fences, delays) over a small, heavily contended address pool —
//! including distinct words of the *same* cache line — on a machine
//! with tiny caches so that evictions, recalls, forwards and
//! invalidations race constantly. Oracles:
//!
//! 1. **Termination**: every scenario must run to completion (the
//!    run-loop's deadlock detector fails the test otherwise).
//! 2. **Per-(address, writer) read monotonicity**: stores carry unique
//!    encoded versions; CoWW + CoRR imply no reader may observe an
//!    earlier version from some writer after a later one from the same
//!    writer at the same address. Recorded loads are checked post-run.
//! 3. **Determinism**: re-running a scenario reproduces it exactly.

use tsocc::{System, SystemConfig};
use tsocc_conform::version::{decode, encode};
use tsocc_conform::DEFAULT_POOL as POOL;
use tsocc_isa::{Asm, Program, Reg};
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;
use tsocc_sim::Xoshiro256StarStar;

/// One randomly generated core program; returns (program, the pool
/// index each recorded load register observes).
fn gen_program(rng: &mut Xoshiro256StarStar, core: usize, ops: usize) -> (Program, Vec<usize>) {
    let mut a = Asm::new();
    a.rand_delay(40);
    let mut seq = 0u32;
    let mut recorded = Vec::new();
    for _ in 0..ops {
        let addr_idx = rng.index(POOL.len());
        let addr = POOL[addr_idx];
        match rng.range(0, 10) {
            // Loads are recorded while registers remain (R1..R24).
            0..=3 => {
                if recorded.len() < 24 {
                    let rd = Reg::from_index(1 + recorded.len());
                    a.load_abs(rd, addr);
                    recorded.push(addr_idx);
                } else {
                    a.load_abs(Reg::R27, addr);
                }
            }
            4..=6 => {
                seq += 1;
                a.movi(Reg::R25, encode(core, seq));
                a.store_abs(Reg::R25, addr);
            }
            7 => {
                seq += 1;
                a.movi(Reg::R25, encode(core, seq));
                a.swap(Reg::R26, Reg::R0, addr, Reg::R25);
            }
            8 => {
                a.fence();
            }
            _ => {
                a.rand_delay(25);
            }
        }
    }
    a.halt();
    (a.finish(), recorded)
}

fn fuzz_configs() -> Vec<Protocol> {
    vec![
        Protocol::Mesi,
        // Limited-pointer directory with an immediate coarse fallback:
        // overflow/broadcast races on every multi-sharer line.
        Protocol::MesiCoarse(tsocc_mesi_coarse::MesiCoarseConfig::new(1, 2)),
        Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
        Protocol::TsoCc(TsoCcConfig::basic()),
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits: 4,
                write_group_bits: 0,
            }),
            ..TsoCcConfig::realistic(12, 3)
        }),
    ]
}

/// Runs one scenario and applies the oracles; returns the observation
/// matrix for the determinism check.
fn run_scenario(protocol: Protocol, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let n_cores = 2 + rng.index(2); // 2..=3 cores
    let ops = 12 + rng.index(14);
    let mut programs = Vec::new();
    let mut recorded = Vec::new();
    for core in 0..n_cores {
        let (p, r) = gen_program(&mut rng, core, ops);
        programs.push(p);
        recorded.push(r);
    }
    let mut cfg = SystemConfig::builder()
        .small()
        .cores(n_cores)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed ^ 0xDEAD_BEEF;
    let mut sys = System::new(cfg, programs);
    // Oracle 1: termination (Deadlock/Timeout fail here).
    sys.run(20_000_000)
        .unwrap_or_else(|e| panic!("seed {seed} under {}: {e}", protocol.name()));

    // Oracle 2: per-(address, writer) version monotonicity.
    let mut observations = Vec::new();
    for (core, loads) in recorded.iter().enumerate() {
        let mut seen: Vec<u64> = Vec::new();
        // last seq seen per (pool index, writer)
        let mut last = std::collections::HashMap::new();
        for (i, &addr_idx) in loads.iter().enumerate() {
            let value = sys.core(core).thread().reg(Reg::from_index(1 + i));
            seen.push(value);
            if let Some((writer, seq)) = decode(value) {
                let entry = last.entry((addr_idx, writer)).or_insert(0u32);
                assert!(
                    seq >= *entry,
                    "seed {seed} under {}: core {core} read writer {writer}'s \
                     seq {seq} after {} at pool[{addr_idx}] (CoRR/CoWW violation)",
                    protocol.name(),
                    *entry
                );
                *entry = seq;
            }
        }
        observations.push(seen);
    }
    observations
}

#[test]
fn randomized_scenarios_hold_coherence_axioms() {
    for protocol in fuzz_configs() {
        for seed in 0..30u64 {
            run_scenario(protocol, seed * 7 + 1);
        }
    }
}

#[test]
fn scenarios_are_reproducible() {
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        for seed in [3u64, 17, 99] {
            let a = run_scenario(protocol, seed);
            let b = run_scenario(protocol, seed);
            assert_eq!(a, b, "seed {seed} under {}", protocol.name());
        }
    }
}

/// Longer exploration, opt-in: `TSOCC_FUZZ_ITERS=5000 cargo test
/// --release --test protocol_fuzz -- --ignored`.
#[test]
#[ignore = "long-running exploration; enable with TSOCC_FUZZ_ITERS"]
fn extended_exploration() {
    let iters: u64 = std::env::var("TSOCC_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    for protocol in fuzz_configs() {
        for seed in 0..iters {
            run_scenario(protocol, seed.wrapping_mul(0x9E37_79B9) + 13);
        }
    }
}
