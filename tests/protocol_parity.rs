//! Integration smoke test for the protocol-factory seam: MESI, the
//! limited-pointer MESI-coarse directory and TSO-CC, constructed
//! through the open [`ProtocolFactory`] API (not the `Protocol` enum),
//! must agree on the final architectural state of a small deterministic
//! program, and on litmus verdicts.
//!
//! [`ProtocolFactory`]: tsocc_coherence::ProtocolFactory

use tsocc::{System, SystemConfig};
use tsocc_coherence::ProtocolHandle;
use tsocc_isa::{Asm, Program, Reg};
use tsocc_mem::Addr;
use tsocc_mesi::MesiFactory;
use tsocc_mesi_coarse::{MesiCoarseConfig, MesiCoarseFactory};
use tsocc_proto::{TsoCcConfig, TsoCcFactory};
use tsocc_workloads::{litmus_suite, run_litmus};

/// The factories under test, built directly — the way an out-of-tree
/// protocol crate would register, with no `Protocol` enum involved.
fn factories() -> Vec<(&'static str, ProtocolHandle)> {
    vec![
        ("mesi", MesiFactory.into()),
        (
            "mesi-coarse-p1-g2",
            MesiCoarseFactory::new(MesiCoarseConfig::new(1, 2)).into(),
        ),
        (
            "tsocc-basic",
            TsoCcFactory::new(TsoCcConfig::basic()).into(),
        ),
        (
            "tsocc-4-12-3",
            TsoCcFactory::new(TsoCcConfig::realistic(12, 3)).into(),
        ),
    ]
}

/// Two cores: core 0 increments a shared counter and fills an array;
/// core 1 spins for the handshake flag, then reads the array back and
/// stores a checksum. Fences before halting drain every dirty line to
/// a coherent final memory state.
fn deterministic_programs() -> Vec<Program> {
    let base = 0x2_0000u64;
    let n = 24u64;
    let flag = 0x3_0000u64;
    let out = 0x3_0040u64;

    let mut p0 = Asm::new();
    p0.movi(Reg::R1, 0);
    let fill = p0.new_label();
    p0.bind(fill);
    p0.muli(Reg::R2, Reg::R1, 64);
    p0.addi(Reg::R2, Reg::R2, base);
    p0.addi(Reg::R3, Reg::R1, 100);
    p0.store(Reg::R3, Reg::R2, 0);
    p0.addi(Reg::R1, Reg::R1, 1);
    p0.blt_imm(Reg::R1, n, fill);
    p0.movi(Reg::R4, 1);
    p0.store_abs(Reg::R4, flag);
    p0.fence();
    p0.halt();

    let mut p1 = Asm::new();
    let spin = p1.new_label();
    p1.bind(spin);
    p1.load_abs(Reg::R1, flag);
    p1.beq(Reg::R1, Reg::R0, spin);
    p1.movi(Reg::R1, 0);
    p1.movi(Reg::R5, 0);
    let sum = p1.new_label();
    p1.bind(sum);
    p1.muli(Reg::R2, Reg::R1, 64);
    p1.addi(Reg::R2, Reg::R2, base);
    p1.load(Reg::R3, Reg::R2, 0);
    p1.add(Reg::R5, Reg::R5, Reg::R3);
    p1.addi(Reg::R1, Reg::R1, 1);
    p1.blt_imm(Reg::R1, n, sum);
    p1.store_abs(Reg::R5, out);
    p1.fence();
    p1.halt();

    vec![p0.finish(), p1.finish()]
}

#[test]
fn factories_agree_on_final_memory_state() {
    let base = 0x2_0000u64;
    let n = 24u64;
    let out = 0x3_0040u64;
    let expected_sum: u64 = (0..n).map(|i| i + 100).sum();

    let mut final_states: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for (label, factory) in factories() {
        let cfg = SystemConfig::builder()
            .small()
            .cores(2)
            .protocol(factory)
            .build()
            .expect("valid config");
        let mut sys = System::new(cfg, deterministic_programs());
        let stats = sys
            .run(5_000_000)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(stats.cycles > 0, "{label}");

        // The consumer's checksum proves it read every element through
        // the protocol under test.
        assert_eq!(
            sys.core(1).thread().reg(Reg::R5),
            expected_sum,
            "{label}: consumer checksum"
        );

        // Both programs fence before halting, so DRAM holds the final
        // architectural memory state.
        let mut words: Vec<u64> = (0..n)
            .map(|i| sys.read_mem_word(Addr::new(base + i * 64)))
            .collect();
        words.push(sys.read_mem_word(Addr::new(out)));
        final_states.push((label, words));
    }

    let (ref_label, ref_words) = &final_states[0];
    for (label, words) in &final_states[1..] {
        assert_eq!(
            words, ref_words,
            "{label} final memory diverges from {ref_label}"
        );
    }
}

#[test]
fn factories_agree_on_litmus_verdicts() {
    for (label, factory) in factories() {
        for test in litmus_suite() {
            let report = run_litmus(&test, factory.clone(), 20, 0xDEC0DE);
            assert!(
                report.passed(),
                "{label}: litmus {} saw a forbidden outcome: {:?}",
                test.name,
                report.outcomes
            );
        }
    }
}
