//! The fault-injection axis end to end: a hand-crafted `HoldMshr`
//! deadlock must produce an enriched [`RunError::Deadlock`] and a
//! structured [`HangReport`] whose wait-for cycle names the held line;
//! the report must survive a JSON round trip; and benign NoC jitter
//! must change latency without changing correctness or breaking the
//! bit-identity of the three steppers.

use tsocc::{
    FaultPlan, NocFault, ProtocolFault, RunError, RunStats, Stepper, System, SystemConfig,
};
use tsocc_bench::hang::{hang_report_json, parse_hang_report};
use tsocc_isa::{Asm, Program, Reg};
use tsocc_mem::{LineAddr, LineData};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::litmus::{litmus_suite, run_litmus_faulted, FaultVerdict};
use tsocc_workloads::{Benchmark, Scale};

/// The line of address `0x2000` under 64-byte lines.
const LINE_X: LineAddr = LineAddr::new(0x80);

/// Core 0 touches `0x2000` (and must wedge when its MSHR is held);
/// core 1 idles.
fn wedge_programs() -> Vec<Program> {
    let mut a = Asm::new();
    a.load_abs(Reg::R1, 0x2000);
    a.halt();
    let mut b = Asm::new();
    b.halt();
    vec![a.finish(), b.finish()]
}

fn held_mshr_system(protocol: Protocol) -> System {
    let mut cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.faults = FaultPlan {
        protocol: Some(ProtocolFault::HoldMshr {
            core: 0,
            line: LINE_X,
        }),
        ..FaultPlan::none()
    };
    System::new(cfg, wedge_programs())
}

#[test]
fn held_mshr_deadlocks_with_enriched_error() {
    let mut sys = held_mshr_system(Protocol::Mesi);
    let err = sys.run(1_000_000).expect_err("held MSHR must deadlock");
    let RunError::Deadlock {
        cores_unfinished,
        busy_controllers,
        first_blocked_line,
        ..
    } = &err
    else {
        panic!("expected a deadlock, got {err}");
    };
    assert_eq!(*cores_unfinished, 1);
    assert!(*busy_controllers >= 1);
    assert_eq!(*first_blocked_line, Some(LINE_X));
    // The Display form carries the outstanding-work counters and the
    // blocked line so a bare `{e}` in a driver is already diagnostic.
    let msg = err.to_string();
    assert!(msg.contains("busy controllers"), "{msg}");
    assert!(msg.contains("L0x80"), "{msg}");
}

#[test]
fn hang_report_names_the_held_line() {
    let mut sys = held_mshr_system(Protocol::Mesi);
    sys.run(1_000_000).expect_err("held MSHR must deadlock");
    let report = sys.hang_report();
    assert_eq!(report.cores_unfinished, 1);
    assert_eq!(report.first_blocked_line(), Some(LINE_X));
    // Core 0's L1 shows the held MSHR entry...
    let l1 = report
        .l1s
        .iter()
        .find(|h| h.core == 0)
        .expect("L1#0 must have outstanding work");
    assert!(l1.probe.mshr_lines.contains(&LINE_X));
    // ...and the wait-for graph has an edge from it, naming the line.
    assert!(report
        .edges
        .iter()
        .any(|e| e.from == "L1#0" && e.line == LINE_X));
    assert!(report.summary().contains("L0x80"), "{}", report.summary());
}

#[test]
fn hang_report_round_trips_through_bench_json() {
    let mut sys = held_mshr_system(Protocol::TsoCc(TsoCcConfig::default()));
    sys.run(1_000_000).expect_err("held MSHR must deadlock");
    let report = sys.hang_report();
    let doc = hang_report_json(&report);
    let back = parse_hang_report(&doc).expect("report JSON must parse");
    assert_eq!(back, report);
}

#[test]
fn litmus_flags_the_held_mshr_as_hung() {
    let suite = litmus_suite();
    let mp = suite.iter().find(|t| t.name == "MP").unwrap();
    let plan = FaultPlan {
        protocol: Some(ProtocolFault::HoldMshr {
            core: 0,
            line: LINE_X,
        }),
        ..FaultPlan::none()
    };
    match run_litmus_faulted(mp, Protocol::Mesi, 4, 7, plan) {
        FaultVerdict::Hung { report, .. } => {
            assert_eq!(report.first_blocked_line(), Some(LINE_X));
        }
        other => panic!(
            "expected a hang, got {}",
            if other.detected() {
                "forbidden"
            } else {
                "clean"
            }
        ),
    }
}

/// Runs one small benchmark under `stepper` with the given plan.
fn run_fft(plan: FaultPlan, stepper: Stepper) -> (RunStats, Vec<(LineAddr, LineData)>) {
    let workload = Benchmark::Fft.build(4, Scale::Tiny, 7);
    let mut cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(Protocol::TsoCc(TsoCcConfig::default()))
        .build()
        .expect("valid config");
    cfg.stepper = stepper;
    cfg.faults = plan;
    let mut sys = System::new(cfg, workload.programs.clone());
    let stats = sys.run(5_000_000).expect("benign plan must complete");
    (stats, sys.memory_image())
}

#[test]
fn noc_jitter_changes_latency_not_results() {
    let jitter = FaultPlan {
        seed: 11,
        noc: Some(NocFault {
            extra_delay_max: 7,
            vnet: None,
        }),
        ..FaultPlan::none()
    };
    let (clean, clean_mem) = run_fft(FaultPlan::none(), Stepper::EventDriven);
    let (jittered, jittered_mem) = run_fft(jitter, Stepper::EventDriven);
    // Same answers, different timing: the jitter really fired.
    assert_eq!(clean_mem, jittered_mem);
    assert_ne!(clean.cycles, jittered.cycles);

    // The jittered run stays bit-identical across all three steppers —
    // injected delays ride the deterministic arrival path, so the
    // conservative windows still hold.
    let (reference, ref_mem) = run_fft(jitter, Stepper::Reference);
    let (sharded, shard_mem) = run_fft(jitter, Stepper::ParallelShards { shards: 3 });
    assert_eq!(jittered, reference);
    assert_eq!(jittered, sharded);
    assert_eq!(jittered_mem, ref_mem);
    assert_eq!(jittered_mem, shard_mem);
}

#[test]
fn noc_jitter_keeps_litmus_clean() {
    let jitter = FaultPlan {
        seed: 3,
        noc: Some(NocFault {
            extra_delay_max: 5,
            vnet: None,
        }),
        ..FaultPlan::none()
    };
    let suite = litmus_suite();
    for name in ["SB", "MP", "MP+rounds", "IRIW"] {
        let test = suite.iter().find(|t| t.name == name).unwrap();
        for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::default())] {
            let verdict = run_litmus_faulted(test, protocol, 8, 7, jitter);
            assert!(
                !verdict.detected(),
                "benign jitter flagged {name} on {}",
                protocol.name()
            );
        }
    }
}
