//! §4.3 verification: the full TSO litmus suite against every protocol
//! configuration, plus a stress configuration with 4-bit timestamps
//! that forces frequent timestamp resets and epoch wraparound.

use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;
use tsocc_workloads::{litmus_suite, run_litmus};

fn stress_configs() -> Vec<Protocol> {
    let mut configs = Protocol::sweep_configs();
    // A one-pointer, two-core-group directory: every second sharer
    // collapses the set to coarse groups, so invalidation broadcasts
    // constantly over-approximate.
    configs.push(Protocol::MesiCoarse(MesiCoarseConfig::new(1, 2)));
    // 4-bit timestamps with write-group 1: a reset every 15 writes —
    // the §3.5 reset/epoch machinery fires constantly.
    configs.push(Protocol::TsoCc(TsoCcConfig {
        write_ts: Some(TsParams {
            ts_bits: 4,
            write_group_bits: 0,
        }),
        ..TsoCcConfig::realistic(12, 3)
    }));
    // 4-bit timestamps with grouping.
    configs.push(Protocol::TsoCc(TsoCcConfig {
        write_ts: Some(TsParams {
            ts_bits: 4,
            write_group_bits: 2,
        }),
        ..TsoCcConfig::realistic(12, 3)
    }));
    configs
}

#[test]
fn no_forbidden_outcomes_under_any_configuration() {
    let iters = 25;
    for protocol in stress_configs() {
        for test in litmus_suite() {
            let report = run_litmus(&test, protocol, iters, 0xFACE);
            assert_eq!(
                report.forbidden_count,
                0,
                "{} under {} produced a forbidden outcome: {:?}",
                test.name,
                protocol.name(),
                report.outcomes
            );
            assert_eq!(report.iterations, iters);
        }
    }
}

#[test]
fn store_buffer_relaxation_is_visible() {
    // The TSO-allowed SB outcome [0,0] must actually appear — proof
    // that the write buffer relaxes w->r like real TSO hardware.
    let suite = litmus_suite();
    let sb = suite.iter().find(|t| t.name == "SB").expect("SB present");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig::basic()),
    ] {
        let report = run_litmus(sb, protocol, 60, 0xAB);
        assert!(
            report.relaxed_seen,
            "{}: SB never showed the relaxed [0,0] outcome: {:?}",
            protocol.name(),
            report.outcomes
        );
    }
}

#[test]
fn fences_restore_sequential_consistency_for_sb() {
    let suite = litmus_suite();
    let sbf = suite
        .iter()
        .find(|t| t.name == "SB+mfences")
        .expect("present");
    for protocol in Protocol::paper_configs() {
        let report = run_litmus(sbf, protocol, 40, 0xCD);
        assert!(report.passed(), "{}", protocol.name());
        // The [0,0] outcome must be absent entirely.
        assert!(
            !report.outcomes.keys().any(|o| o == &vec![0, 0]),
            "{}: fenced SB still reordered",
            protocol.name()
        );
    }
}

#[test]
fn message_passing_liveness_with_spinning_consumer() {
    // The paper's Figure 1 with a real spin: termination itself is the
    // write-propagation guarantee (§3.1).
    let suite = litmus_suite();
    let mp = suite
        .iter()
        .find(|t| t.name == "MP+spin (Fig.1)")
        .expect("present");
    for protocol in stress_configs() {
        let report = run_litmus(mp, protocol, 25, 0xEF);
        assert!(report.passed(), "{}", protocol.name());
        // Every iteration the consumer must have seen data = 7.
        for outcome in report.outcomes.keys() {
            assert_eq!(outcome[1], 7, "{}: stale data read", protocol.name());
        }
    }
}
