//! Cross-protocol and cross-refactor parity for the shared controller
//! chassis:
//!
//! 1. **Golden RunStats** — full `Debug`-formatted [`RunStats`] of one
//!    fixed sweep point per protocol, captured from the pre-chassis
//!    implementations. Every counter, histogram bucket and cycle count
//!    must survive the policy/chassis refactor untouched, field for
//!    field.
//! 2. **Degenerate-directory parity** — MESI-coarse with a pointer
//!    budget wider than the core count never overflows, so it must be
//!    cycle-for-cycle identical to full-vector MESI: same [`RunStats`],
//!    same final memory image.
//!
//! [`RunStats`]: tsocc::RunStats

use tsocc::{System, SystemConfig};
use tsocc_bench::sweep::SweepPoint;
use tsocc_mem::Addr;
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

/// The pre-refactor `Debug` rendering of the MESI point's RunStats
/// (fft, 4 cores, Tiny scale, base seed 0xC0FFEE).
const GOLDEN_MESI: &str = "RunStats { cycles: 3354, l1: L1Stats { read_hit_private: Counter(20), read_hit_shared: Counter(329), read_hit_sharedro: Counter(0), write_hit_private: Counter(59), read_miss_invalid: Counter(72), read_miss_shared: Counter(0), write_miss_invalid: Counter(13), write_miss_shared: Counter(16), write_miss_sharedro: Counter(0), rmw_miss: Counter(13), rmw_hit: Counter(3), selfinv_events: [Counter(0), Counter(0), Counter(0), Counter(0)], selfinv_lines: Counter(0), ts_resets: Counter(0) }, l2: L2Stats { hits: Counter(67), misses: Counter(34), writebacks: Counter(0), decays: Counter(0), sro_invalidations: Counter(0), ts_resets: Counter(0) }, noc: NocStats { messages: [Counter(135), Counter(65), Counter(279)], flits_injected: Counter(1071), flit_hops: Counter(959), contention_cycles: Counter(182) }, instructions: 1338, rmw_latency: Histogram { count: 16, sum: 1360, min: Some(3), max: Some(248) }, load_latency: Histogram { count: 72, sum: 9184, min: Some(33), max: Some(264) }, wb_full_stalls: 0 }";

/// The pre-refactor `Debug` rendering of the TSO-CC-4-12-3 point.
const GOLDEN_TSOCC: &str = "RunStats { cycles: 3489, l1: L1Stats { read_hit_private: Counter(20), read_hit_shared: Counter(211), read_hit_sharedro: Counter(56), write_hit_private: Counter(59), read_miss_invalid: Counter(91), read_miss_shared: Counter(13), write_miss_invalid: Counter(16), write_miss_shared: Counter(12), write_miss_sharedro: Counter(1), rmw_miss: Counter(13), rmw_hit: Counter(3), selfinv_events: [Counter(52), Counter(38), Counter(0), Counter(0)], selfinv_lines: Counter(76), ts_resets: Counter(0) }, l2: L2Stats { hits: Counter(99), misses: Counter(34), writebacks: Counter(0), decays: Counter(0), sro_invalidations: Counter(1), ts_resets: Counter(0) }, noc: NocStats { messages: [Counter(167), Counter(44), Counter(261)], flits_injected: Counter(1256), flit_hops: Counter(1156), contention_cycles: Counter(169) }, instructions: 1278, rmw_latency: Histogram { count: 16, sum: 1352, min: Some(3), max: Some(258) }, load_latency: Histogram { count: 104, sum: 10003, min: Some(23), max: Some(254) }, wb_full_stalls: 0 }";

fn golden_point(protocol: Protocol) -> tsocc::RunStats {
    SweepPoint {
        bench: Benchmark::Fft,
        protocol,
        n_cores: 4,
        scale: Scale::Tiny,
    }
    .run(0xC0FFEE)
    .stats
}

#[test]
fn mesi_run_stats_survive_the_chassis_refactor_field_for_field() {
    let stats = golden_point(Protocol::Mesi);
    assert_eq!(format!("{stats:?}"), GOLDEN_MESI);
}

#[test]
fn tsocc_run_stats_survive_the_chassis_refactor_field_for_field() {
    let stats = golden_point(Protocol::TsoCc(TsoCcConfig::realistic(12, 3)));
    assert_eq!(format!("{stats:?}"), GOLDEN_TSOCC);
}

/// Runs `protocol` on a fixed workload/seed (identical across
/// protocols — unlike sweep points, whose seeds hash the protocol
/// name) and returns the full RunStats plus the final memory image.
fn run_fixed(protocol: Protocol, n_cores: usize, bench: Benchmark) -> (tsocc::RunStats, Vec<u64>) {
    let seed = 0x5EED;
    let workload = bench.build(n_cores, Scale::Tiny, seed);
    let mut cfg = SystemConfig::builder()
        .cores(n_cores)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    let stats = sys.run(200_000_000).expect("terminates");
    let memory = sys
        .memory_image()
        .into_iter()
        .map(|(line, data)| line.as_u64() ^ data.read_word(0))
        .collect();
    (stats, memory)
}

#[test]
fn wide_pointer_mesi_coarse_is_bit_identical_to_full_vector_mesi() {
    // 8 pointers >= 8 cores: the coarse fallback can never trigger, so
    // the limited-pointer directory degenerates to an exact directory
    // and must reproduce full-vector MESI cycle for cycle.
    let wide = Protocol::MesiCoarse(MesiCoarseConfig::new(8, 1));
    for bench in [Benchmark::Fft, Benchmark::Intruder] {
        for n_cores in [2usize, 4, 8] {
            let (mesi_stats, mesi_mem) = run_fixed(Protocol::Mesi, n_cores, bench);
            let (coarse_stats, coarse_mem) = run_fixed(wide, n_cores, bench);
            assert_eq!(
                mesi_stats,
                coarse_stats,
                "{} x{n_cores}: RunStats diverge",
                bench.name()
            );
            assert_eq!(
                mesi_mem,
                coarse_mem,
                "{} x{n_cores}: final memory diverges",
                bench.name()
            );
        }
    }
}

#[test]
fn narrow_pointer_mesi_coarse_diverges_but_stays_correct() {
    // One pointer forces the coarse fallback as soon as a second
    // sharer appears: traffic must grow (spurious invalidations) while
    // the architectural memory state stays identical to MESI.
    let narrow = Protocol::MesiCoarse(MesiCoarseConfig::new(1, 4));
    let (mesi_stats, mesi_mem) = run_fixed(Protocol::Mesi, 8, Benchmark::Fft);
    let (coarse_stats, coarse_mem) = run_fixed(narrow, 8, Benchmark::Fft);
    assert_eq!(mesi_mem, coarse_mem, "architectural state must agree");
    assert!(
        coarse_stats.noc.total_messages() > mesi_stats.noc.total_messages(),
        "coarse fallback must cost extra invalidation traffic ({} vs {})",
        coarse_stats.noc.total_messages(),
        mesi_stats.noc.total_messages()
    );
}
