//! Systematic litmus sweep with a machine-checked oracle.
//!
//! diy (the tool the paper uses, §4.3) enumerates litmus shapes
//! systematically and derives their verdicts from the x86-TSO model.
//! This test does the same end-to-end: every generated two-thread
//! program is (1) run through the exhaustive operational TSO reference
//! model to compute its exact allowed-outcome set, then (2) executed on
//! the full simulator repeatedly under randomized timing — every
//! observed outcome must be in the allowed set.

use tsocc::{System, SystemConfig};
use tsocc_conform::{compile_model_thread, observed_outcome};
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::{allowed_outcomes, generate_two_thread_programs, ModelOp};

/// Distinct cache lines for the model's two locations. (The campaign's
/// default pool adds same-line words; the systematic family keeps the
/// historical two-line layout.)
const ADDRS: [u64; 2] = [0x2000, 0x2040];

/// Compiles a model thread against the two-line pool. Compilation and
/// outcome extraction are the shared `tsocc-conform` helpers — the same
/// code the campaign engine runs.
fn compile(ops: &[ModelOp], jitter: u32) -> tsocc_isa::Program {
    compile_model_thread(ops, &ADDRS, jitter)
}

fn sweep(protocol: Protocol, ops_per_thread: usize, iters: u64, stride: usize) {
    let programs = generate_two_thread_programs(ops_per_thread);
    for (pi, program) in programs.iter().enumerate().step_by(stride) {
        let allowed = allowed_outcomes(program);
        for it in 0..iters {
            let seed = (pi as u64) << 8 | it;
            let compiled = vec![compile(&program[0], 50), compile(&program[1], 50)];
            let mut cfg = SystemConfig::builder()
                .small()
                .cores(2)
                .protocol(protocol)
                .build()
                .expect("valid config");
            cfg.seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut sys = System::new(cfg, compiled);
            sys.run(5_000_000)
                .unwrap_or_else(|e| panic!("program {pi} under {}: {e}", protocol.name()));
            let outcome = observed_outcome(&sys, program);
            assert!(
                allowed.contains(&outcome),
                "program {pi} ({program:?}) under {}: outcome {outcome:?} \
                 is TSO-forbidden (allowed: {allowed:?})",
                protocol.name()
            );
        }
    }
}

#[test]
fn one_op_threads_exhaustive() {
    // All 9 one-op-per-thread programs, every protocol, many timings.
    for protocol in Protocol::paper_configs() {
        sweep(protocol, 1, 6, 1);
    }
}

#[test]
fn two_op_threads_sampled_on_key_configs() {
    // 219 two-op programs; sample every 5th on the headline configs
    // and a reset-stress config.
    let configs = [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig::basic()),
        Protocol::TsoCc(TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits: 4,
                write_group_bits: 0,
            }),
            ..TsoCcConfig::realistic(12, 3)
        }),
    ];
    for protocol in configs {
        sweep(protocol, 2, 3, 5);
    }
}

#[test]
fn classic_shapes_full_iteration_counts() {
    // The four named shapes (SB, MP, LB, fenced SB) as model programs,
    // checked against the model's verdicts with more iterations.
    let st = |addr: u8| ModelOp::Store { addr, value: 1 };
    let ld = |addr: u8| ModelOp::Load { addr };
    let shapes: Vec<Vec<Vec<ModelOp>>> = vec![
        vec![vec![st(0), ld(1)], vec![st(1), ld(0)]],
        vec![vec![st(0), st(1)], vec![ld(1), ld(0)]],
        vec![vec![ld(0), st(1)], vec![ld(1), st(0)]],
        vec![
            vec![st(0), ModelOp::Fence, ld(1)],
            vec![st(1), ModelOp::Fence, ld(0)],
        ],
    ];
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        for (si, program) in shapes.iter().enumerate() {
            let allowed = allowed_outcomes(program);
            for it in 0..25u64 {
                let compiled = vec![compile(&program[0], 60), compile(&program[1], 60)];
                let mut cfg = SystemConfig::builder()
                    .small()
                    .cores(2)
                    .protocol(protocol)
                    .build()
                    .expect("valid config");
                cfg.seed = (si as u64) << 32 | it;
                let mut sys = System::new(cfg, compiled);
                sys.run(5_000_000).unwrap();
                let outcome = observed_outcome(&sys, program);
                assert!(
                    allowed.contains(&outcome),
                    "shape {si} under {}: {outcome:?} not in {allowed:?}",
                    protocol.name()
                );
            }
        }
    }
}
