//! Coherence-axiom checking beyond fixed litmus shapes: writers stamp
//! every store with a unique, strictly increasing version, and readers
//! record a *sequence* of loads in registers. TSO's per-location
//! coherence requires each reader's observed versions per address to be
//! non-decreasing (no CoRR violation), under every protocol
//! configuration and randomized timing.

use proptest::prelude::*;
use tsocc::{System, SystemConfig};
use tsocc_isa::{Asm, Reg};
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;

const A0: u64 = 0x2000;
const A1: u64 = 0x2040;

fn configs() -> Vec<Protocol> {
    vec![
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
        Protocol::TsoCc(TsoCcConfig::basic()),
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits: 4,
                write_group_bits: 0,
            }),
            ..TsoCcConfig::realistic(12, 3)
        }),
    ]
}

/// Writer: stores versions 1..=n to one address with jittered pacing.
fn writer(addr: u64, n: u64, pace: u32) -> tsocc_isa::Program {
    let mut a = Asm::new();
    a.movi(Reg::R1, 0);
    let top = a.new_label();
    a.bind(top);
    a.addi(Reg::R1, Reg::R1, 1);
    a.store_abs(Reg::R1, addr);
    a.rand_delay(pace);
    a.blt_imm(Reg::R1, n, top);
    a.halt();
    a.finish()
}

/// Reader: alternately loads both addresses `k` times each, recording
/// results in R1..R(2k).
fn reader(k: usize, pace: u32) -> tsocc_isa::Program {
    assert!(2 * k <= 20, "register budget");
    let mut a = Asm::new();
    for i in 0..k {
        a.load_abs(Reg::from_index(1 + 2 * i), A0);
        a.load_abs(Reg::from_index(2 + 2 * i), A1);
        a.rand_delay(pace);
    }
    a.halt();
    a.finish()
}

/// Asserts that the version sequence a reader observed per address is
/// non-decreasing.
fn assert_monotonic(sys: &System, core: usize, k: usize, label: &str) {
    for (offset, addr) in [(1usize, "A0"), (2usize, "A1")] {
        let mut last = 0u64;
        for i in 0..k {
            let v = sys.core(core).thread().reg(Reg::from_index(offset + 2 * i));
            assert!(
                v >= last,
                "{label}: core {core} read version {v} after {last} at {addr} (CoRR violation)"
            );
            last = v;
        }
    }
}

fn run_axiom_check(protocol: Protocol, seed: u64, writes: u64, pace: u32) {
    let k = 8;
    let programs = vec![
        writer(A0, writes, pace),
        writer(A1, writes, pace),
        reader(k, pace),
        reader(k, pace / 2 + 1),
    ];
    let mut cfg = SystemConfig::builder()
        .small()
        .cores(4)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    let mut sys = System::new(cfg, programs);
    sys.run(50_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    assert_monotonic(&sys, 2, k, &protocol.name());
    assert_monotonic(&sys, 3, k, &protocol.name());
}

#[test]
fn per_location_reads_are_monotonic_across_configs() {
    for protocol in configs() {
        for seed in [1u64, 2, 3] {
            run_axiom_check(protocol, seed, 30, 40);
        }
    }
}

#[test]
fn monotonicity_holds_under_slow_writers() {
    // Slow writers maximize the window in which stale Shared copies can
    // serve hits between versions.
    for protocol in configs() {
        run_axiom_check(protocol, 9, 10, 300);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized seeds and pacing never produce a CoRR violation on
    /// the best TSO-CC configuration or under constant timestamp
    /// resets.
    #[test]
    fn prop_no_corr_violation(seed in 1u64..10_000, pace in 1u32..150) {
        run_axiom_check(Protocol::TsoCc(TsoCcConfig::realistic(12, 3)), seed, 20, pace);
        run_axiom_check(
            Protocol::TsoCc(TsoCcConfig {
                write_ts: Some(TsParams { ts_bits: 4, write_group_bits: 1 }),
                ..TsoCcConfig::realistic(12, 3)
            }),
            seed,
            20,
            pace,
        );
    }
}
