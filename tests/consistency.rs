//! Differential consistency tests: the full timing simulator must agree
//! with the sequential reference interpreter wherever TSO and SC
//! coincide (single threads; properly synchronized or disjoint
//! multi-threaded programs).

use std::collections::HashMap;

use proptest::prelude::*;
use tsocc::{System, SystemConfig};
use tsocc_isa::{refvm::run_ref, Asm, Program, Reg};
use tsocc_mem::Addr;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::sync;

fn protocols() -> Vec<Protocol> {
    vec![
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
        Protocol::TsoCc(TsoCcConfig::basic()),
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig::realistic(9, 0)),
    ]
}

/// Runs a single program on the full system and returns (registers,
/// final value of the probed words).
fn run_on_system(protocol: Protocol, program: Program, probes: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(protocol)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![program.clone()]);
    sys.run(20_000_000).expect("terminates");
    let regs = (0..32)
        .map(|i| sys.core(0).thread().reg(Reg::from_index(i)))
        .collect();
    // Probe memory *coherently*: run a second system with a prober? Not
    // needed — after a clean run the caches have drained writebacks for
    // finished private lines only. Instead re-run with a trailing probe
    // program is overkill; we compare registers and rely on the
    // register-visible load results.
    let _ = probes;
    (regs, Vec::new())
}

/// A deterministic mixed single-thread workout: arithmetic, loads,
/// stores, RMWs, fences, branches.
fn single_thread_program(seed: u64) -> Program {
    let mut a = Asm::new();
    a.movi(Reg::R16, seed | 1);
    a.movi(Reg::R1, 0);
    let top = a.new_label();
    a.bind(top);
    // addr = base + ((lcg >> 33) % 24) * 8
    a.muli(Reg::R16, Reg::R16, 6364136223846793005);
    a.addi(Reg::R16, Reg::R16, 1442695040888963407);
    a.shri(Reg::R17, Reg::R16, 33);
    a.remi(Reg::R17, Reg::R17, 24);
    a.shli(Reg::R17, Reg::R17, 3);
    a.load(Reg::R2, Reg::R17, 0x4000);
    a.addi(Reg::R2, Reg::R2, 3);
    a.store(Reg::R2, Reg::R17, 0x4000);
    a.fetch_add(Reg::R3, Reg::R0, 0x5000, Reg::R2);
    a.xori(Reg::R4, Reg::R3, 0x55);
    a.add(Reg::R5, Reg::R5, Reg::R4);
    if seed.is_multiple_of(2) {
        a.fence();
    }
    a.addi(Reg::R1, Reg::R1, 1);
    a.blt_imm(Reg::R1, 40, top);
    a.halt();
    a.finish()
}

#[test]
fn single_thread_matches_reference_on_all_protocols() {
    for seed in [1u64, 2, 3, 99] {
        let program = single_thread_program(seed);
        let mut ref_mem = HashMap::new();
        let ref_regs = run_ref(&program, &mut ref_mem, 1_000_000).expect("halts");
        for protocol in protocols() {
            let (regs, _) = run_on_system(protocol, program.clone(), &[]);
            assert_eq!(
                regs[Reg::R5.index()],
                ref_regs[Reg::R5.index()],
                "seed {seed} under {}",
                protocol.name()
            );
            assert_eq!(regs[Reg::R3.index()], ref_regs[Reg::R3.index()]);
        }
    }
}

#[test]
fn lock_protected_counter_is_exact() {
    // Four threads increment a shared counter 25 times each under a
    // spinlock; a data race would lose updates.
    let lock = 0x6000u64;
    let counter = 0x6040u64;
    for protocol in protocols() {
        let make = || {
            let mut a = Asm::new();
            a.movi(Reg::R1, 0);
            let top = a.new_label();
            a.bind(top);
            sync::lock_acquire(&mut a, lock);
            a.load_abs(Reg::R2, counter);
            a.addi(Reg::R2, Reg::R2, 1);
            a.store_abs(Reg::R2, counter);
            sync::lock_release(&mut a, lock);
            a.addi(Reg::R1, Reg::R1, 1);
            a.blt_imm(Reg::R1, 25, top);
            a.halt();
            a.finish()
        };
        let cfg = SystemConfig::builder()
            .small()
            .cores(4)
            .protocol(protocol)
            .build()
            .expect("valid config");
        let mut sys = System::new(cfg, vec![make(), make(), make(), make()]);
        sys.run(50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
        // Read the final counter through a verification load by core 0:
        // every core halted, so check via one more system run would be
        // clumsy; instead each thread's last read (R2) is <= 100, and
        // the max across cores with its own final increment must be 100.
        let max_final = (0..4)
            .map(|i| sys.core(i).thread().reg(Reg::R2))
            .max()
            .unwrap();
        assert_eq!(max_final, 100, "{}: lost updates", protocol.name());
    }
}

#[test]
fn disjoint_threads_match_reference() {
    // Threads operating on disjoint address ranges must each match the
    // sequential reference exactly — any cross-talk is a protocol bug.
    for protocol in protocols() {
        let programs: Vec<Program> = (0..4u64)
            .map(|t| {
                let mut a = Asm::new();
                let base = 0x10000 + t * 0x1000;
                a.movi(Reg::R1, 0);
                let top = a.new_label();
                a.bind(top);
                a.remi(Reg::R17, Reg::R1, 16);
                a.shli(Reg::R17, Reg::R17, 3);
                a.load(Reg::R2, Reg::R17, base);
                a.addi(Reg::R2, Reg::R2, t + 1);
                a.store(Reg::R2, Reg::R17, base);
                a.add(Reg::R6, Reg::R6, Reg::R2);
                a.addi(Reg::R1, Reg::R1, 1);
                a.blt_imm(Reg::R1, 48, top);
                a.halt();
                a.finish()
            })
            .collect();
        let cfg = SystemConfig::builder()
            .small()
            .cores(4)
            .protocol(protocol)
            .build()
            .expect("valid config");
        let mut sys = System::new(cfg, programs.clone());
        sys.run(50_000_000).expect("terminates");
        for (t, program) in programs.iter().enumerate() {
            let mut ref_mem = HashMap::new();
            let ref_regs = run_ref(program, &mut ref_mem, 1_000_000).expect("halts");
            assert_eq!(
                sys.core(t).thread().reg(Reg::R6),
                ref_regs[Reg::R6.index()],
                "thread {t} under {}",
                protocol.name()
            );
        }
    }
}

#[test]
fn memory_init_then_readback_via_mem_word() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 7);
    a.store_abs(Reg::R1, 0x9000);
    a.fence();
    a.halt();
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    sys.write_word(Addr::new(0x9040), 55);
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.read_mem_word(Addr::new(0x9040)), 55);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random straight-line programs over a small address pool produce
    /// identical register files on the timing simulator and the
    /// reference interpreter.
    #[test]
    fn prop_random_single_thread_matches_reference(
        ops in proptest::collection::vec((0u8..5, 0u64..12, 1u64..100), 5..60),
    ) {
        let mut a = Asm::new();
        for (kind, slot, val) in &ops {
            let addr = 0x7000 + slot * 8;
            match kind {
                0 => { a.movi(Reg::R9, *val); a.store_abs(Reg::R9, addr); }
                1 => { a.load_abs(Reg::R10, addr); a.add(Reg::R11, Reg::R11, Reg::R10); }
                2 => { a.movi(Reg::R9, *val); a.fetch_add(Reg::R12, Reg::R0, addr, Reg::R9); a.add(Reg::R13, Reg::R13, Reg::R12); }
                3 => { a.fence(); }
                _ => { a.movi(Reg::R9, *val); a.swap(Reg::R14, Reg::R0, addr, Reg::R9); }
            }
        }
        a.halt();
        let program = a.finish();
        let mut ref_mem = HashMap::new();
        let ref_regs = run_ref(&program, &mut ref_mem, 1_000_000).unwrap();
        for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::realistic(12, 3))] {
            let cfg = SystemConfig::builder().small().cores(2).protocol(protocol).build().expect("valid config");
            let mut sys = System::new(cfg, vec![program.clone()]);
            sys.run(50_000_000).unwrap();
            for r in [Reg::R11, Reg::R13, Reg::R14] {
                prop_assert_eq!(
                    sys.core(0).thread().reg(r),
                    ref_regs[r.index()],
                    "{} mismatch in {:?}", r, protocol.name()
                );
            }
        }
    }
}
